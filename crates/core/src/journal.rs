//! Write-ahead journaling for durable synthesis sessions.
//!
//! The paper's per-instruction decomposition (§3.3.1) makes partial
//! progress inherently valuable: a 37-instruction run that dies at
//! instruction 30 should not re-solve the first 29. This module gives
//! [`SynthesisSession`](crate::SynthesisSession) a crash-safe journal:
//! every per-instruction result (solution, query log, certification
//! tallies, typed failure) is appended as one self-checking record the
//! moment it completes, and a resumed session replays the intact prefix
//! and re-solves only what is missing.
//!
//! # Format
//!
//! The journal is a line-oriented, dependency-free text format in the
//! spirit of the Oyster printer — human-readable, hand-parsed, no serde:
//!
//! ```text
//! owl-journal v1
//! fingerprint 9a3c51d2e07b4f68
//! rec 0 task "ADD" solved esc 0 holes [ "alu_op" 4'x2 ] qlog [1 2 0 0 10 8 40 96 12 3 2] fails [ ] stats [1 3 0 0] crc 5d1a0c33
//! rec 1 stall "MUL" crc 90ef1a2b
//! rec 2 task "MUL" failed stalled esc 0 holes none qlog [0 0 0 1 9 9 33 80 0 0 0] fails [ ] stats [0 1 0 0] crc 77ab01cd
//! rec 3 done crc 1f00e4a9
//! ```
//!
//! - The **header** binds the journal to its inputs: `fingerprint` is an
//!   FNV-1a hash over the design text, the ILA and abstraction function,
//!   and the semantic synthesis configuration. Resuming against edited
//!   inputs is rejected instead of silently producing a wrong design.
//! - Every **record** line carries its sequence number and a CRC-32 of
//!   the line body. Reading stops at the first record that fails the
//!   CRC, parses badly, or breaks the sequence — a truncated, torn, or
//!   bit-flipped tail degrades to re-solving those instructions, never
//!   a panic and never a wrong solution.
//! - A corrupted or missing **header** degrades the same way: the whole
//!   journal is treated as empty and the run starts fresh.
//!
//! # Record kinds
//!
//! - `task` — one instruction's phase-1 outcome: status (`solved`,
//!   `reused`, or `failed <error>`), escalations used, the hole values
//!   (sorted by name), the certification [`QueryLog`] tallies, and the
//!   per-task work counters. Only *restorable* outcomes are journaled:
//!   global stops (timeout/cancellation) and skipped tasks are not,
//!   so a resumed run re-attempts them.
//! - `retry` — the same snapshot after a phase-2 rebalance retry; it
//!   supersedes the instruction's `task` record on replay.
//! - `stall` — the watchdog declared the instruction stalled (the
//!   task's final `task` record follows with a typed `stalled` failure).
//! - `done` — the run ran both phases to completion; an end marker for
//!   tooling (absence means the process died mid-run).
//!
//! # I/O fault injection
//!
//! All journal I/O goes through the [`JournalIo`] trait. The production
//! [`FileJournal`] consults the session's
//! [`FaultPlan`] I/O channel so write errors, short
//! (torn) writes, and read-side bit flips are injectable
//! deterministically in tests. A failed journal write never fails the
//! run: the writer marks itself broken and the session continues
//! un-journaled (durability degrades; correctness does not).

use crate::certify::QueryLog;
use crate::CoreError;
use owl_bitvec::BitVec;
use owl_smt::FaultPlan;
use owl_smt::IoFault;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The first line of every journal.
pub const MAGIC: &str = "owl-journal v1";

// ---------------------------------------------------------------------
// Checksums
// ---------------------------------------------------------------------

// The per-record CRC-32 and the FNV-64 header fingerprint hash both
// come from the shared `owl_sat::hash` module (re-exported through
// `owl_smt`); re-exported here so journal consumers keep their paths.
pub use owl_smt::hash::{crc32, Fnv64};

// ---------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------

/// The restorable per-instruction state captured by a `task` or `retry`
/// record: everything the scheduler needs to reconstruct the
/// instruction's `TaskOutput` byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSnapshot {
    /// The instruction's status. `Failed` carries only *local* errors
    /// (no-solution, exhaustion, non-convergence, invalid, internal,
    /// stalled); global stops are never journaled.
    pub status: SnapStatus,
    /// Escalation retries the instruction consumed.
    pub escalations: u32,
    /// Hole values, sorted by hole name; `None` unless solved/reused.
    pub holes: Option<Vec<(String, BitVec)>>,
    /// Per-query certification tallies and CNF/term sizes.
    pub qlog: QueryLog,
    /// CEGIS refinement rounds this instruction used.
    pub cex_rounds: usize,
    /// Solver calls this instruction used.
    pub solver_calls: usize,
    /// 1 when the instruction reused a seeded solution.
    pub reused: usize,
    /// Escalations as counted in the work statistics (phase-2 retries
    /// count here even when the outcome kept its phase-1 verdict).
    pub stat_escalations: usize,
}

/// Status inside a [`TaskSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum SnapStatus {
    /// Synthesized fresh (or repaired from a stale seed).
    Solved,
    /// A seeded solution re-verified and was reused.
    Reused,
    /// Failed with a local (per-instruction) error.
    Failed(CoreError),
}

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// Phase-1 outcome for one instruction.
    Task {
        /// Instruction name.
        instr: String,
        /// The restorable state.
        snap: TaskSnapshot,
    },
    /// Phase-2 (rebalance retry) outcome; supersedes the instruction's
    /// `Task` record on replay.
    Retry {
        /// Instruction name.
        instr: String,
        /// The restorable state.
        snap: TaskSnapshot,
    },
    /// The watchdog declared the instruction stalled.
    Stall {
        /// Instruction name.
        instr: String,
    },
    /// Both phases ran to completion.
    Done,
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn push_quoted(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_error(out: &mut String, e: &CoreError) {
    match e {
        CoreError::NoSolution { .. } => out.push_str("nosolution"),
        CoreError::SolverExhausted { .. } => out.push_str("exhausted"),
        CoreError::NoConvergence { rounds, .. } => {
            let _ = write!(out, "noconvergence {rounds}");
        }
        CoreError::Invalid(m) => {
            out.push_str("invalid ");
            push_quoted(out, m);
        }
        CoreError::Internal { message, .. } => {
            out.push_str("internal ");
            push_quoted(out, message);
        }
        CoreError::Stalled { .. } => out.push_str("stalled"),
        // Global stops are filtered out before encoding; encode them
        // defensively as the closest local verdict so a future caller
        // can never produce an unreadable record.
        CoreError::Timeout { .. } | CoreError::Cancelled => out.push_str("exhausted"),
    }
}

/// Encodes a snapshot as the single-line text form used by journal
/// records — also the payload format of the synthesis cache, so a
/// cached result round-trips through exactly the code path that crash
/// recovery already trusts.
#[must_use]
pub fn encode_snapshot(snap: &TaskSnapshot) -> String {
    let mut out = String::new();
    push_snapshot(&mut out, snap);
    out
}

/// Decodes [`encode_snapshot`]'s form; `None` on any damage (the cache
/// treats that as a miss). `instr` names the instruction the snapshot
/// is being rebound to (failure errors carry it).
#[must_use]
pub fn decode_snapshot(text: &str, instr: &str) -> Option<TaskSnapshot> {
    let mut cur = Cursor { tokens: tokenize(text)?.into_iter() };
    let snap = parse_snapshot(&mut cur, instr)?;
    // Trailing garbage means the payload is not a clean encoding.
    if cur.tokens.next().is_some() {
        return None;
    }
    Some(snap)
}

fn push_snapshot(out: &mut String, snap: &TaskSnapshot) {
    match &snap.status {
        SnapStatus::Solved => out.push_str("solved"),
        SnapStatus::Reused => out.push_str("reused"),
        SnapStatus::Failed(e) => {
            out.push_str("failed ");
            push_error(out, e);
        }
    }
    let _ = write!(out, " esc {} holes ", snap.escalations);
    match &snap.holes {
        None => out.push_str("none"),
        Some(holes) => {
            out.push('[');
            for (name, value) in holes {
                out.push(' ');
                push_quoted(out, name);
                let _ = write!(out, " {value}");
            }
            out.push_str(" ]");
        }
    }
    let q = &snap.qlog;
    let _ = write!(
        out,
        " qlog [{} {} {} {} {} {} {} {} {} {} {}] fails [",
        q.sat_verified,
        q.unsat_verified,
        q.trivial,
        q.unchecked,
        q.terms_before,
        q.terms_after,
        q.cnf_vars,
        q.cnf_clauses,
        q.clauses_retained,
        q.blast_cache_hits,
        q.incremental_rounds
    );
    for f in &q.failures {
        out.push(' ');
        push_quoted(out, f);
    }
    let _ = write!(
        out,
        " ] stats [{} {} {} {}]",
        snap.cex_rounds, snap.solver_calls, snap.reused, snap.stat_escalations
    );
}

impl Record {
    /// Encodes the record as one journal line (CRC appended, no
    /// trailing newline).
    #[must_use]
    pub fn encode(&self, seq: u64) -> String {
        let mut body = format!("rec {seq} ");
        match self {
            Record::Task { instr, snap } => {
                body.push_str("task ");
                push_quoted(&mut body, instr);
                body.push(' ');
                push_snapshot(&mut body, snap);
            }
            Record::Retry { instr, snap } => {
                body.push_str("retry ");
                push_quoted(&mut body, instr);
                body.push(' ');
                push_snapshot(&mut body, snap);
            }
            Record::Stall { instr } => {
                body.push_str("stall ");
                push_quoted(&mut body, instr);
            }
            Record::Done => body.push_str("done"),
        }
        let crc = crc32(body.as_bytes());
        let _ = write!(body, " crc {crc:08x}");
        body
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// A whitespace-separated token: a bare word or a quoted string.
enum Token {
    Word(String),
    Str(String),
}

/// Tokenizes one record body; `None` on any lexical error (unclosed
/// quote, bad escape, raw control character).
fn tokenize(body: &str) -> Option<Vec<Token>> {
    let mut tokens = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(' ')) {
            chars.next();
        }
        let Some(&c) = chars.peek() else { break };
        if c == '"' {
            chars.next();
            let mut s = String::new();
            loop {
                match chars.next()? {
                    '"' => break,
                    '\\' => match chars.next()? {
                        '"' => s.push('"'),
                        '\\' => s.push('\\'),
                        'n' => s.push('\n'),
                        'r' => s.push('\r'),
                        't' => s.push('\t'),
                        'u' => {
                            let hex: String = (0..4).map(|_| chars.next()).collect::<Option<_>>()?;
                            let code = u32::from_str_radix(&hex, 16).ok()?;
                            s.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    },
                    c if (c as u32) < 0x20 => return None,
                    c => s.push(c),
                }
            }
            tokens.push(Token::Str(s));
        } else {
            let mut w = String::new();
            while let Some(&c) = chars.peek() {
                if c == ' ' {
                    break;
                }
                if c == '"' || (c as u32) < 0x20 {
                    return None;
                }
                w.push(c);
                chars.next();
            }
            tokens.push(Token::Word(w));
        }
    }
    Some(tokens)
}

/// A forgiving cursor over the token stream: every accessor returns
/// `None` on shape mismatch, so one `?`-chain rejects a corrupt record.
struct Cursor {
    tokens: std::vec::IntoIter<Token>,
}

impl Cursor {
    fn word(&mut self) -> Option<String> {
        match self.tokens.next()? {
            Token::Word(w) => Some(w),
            Token::Str(_) => None,
        }
    }

    fn string(&mut self) -> Option<String> {
        match self.tokens.next()? {
            Token::Str(s) => Some(s),
            Token::Word(_) => None,
        }
    }

    fn keyword(&mut self, expect: &str) -> Option<()> {
        (self.word()? == expect).then_some(())
    }

    fn number<T: std::str::FromStr>(&mut self) -> Option<T> {
        self.word()?.parse().ok()
    }

    fn at_end(&mut self) -> bool {
        self.tokens.as_slice().is_empty()
    }
}

fn parse_error(cur: &mut Cursor, instr: &str) -> Option<CoreError> {
    Some(match cur.word()?.as_str() {
        "nosolution" => CoreError::NoSolution { instr: instr.to_string() },
        "exhausted" => CoreError::SolverExhausted { instr: instr.to_string() },
        "noconvergence" => {
            CoreError::NoConvergence { instr: instr.to_string(), rounds: cur.number()? }
        }
        "invalid" => CoreError::Invalid(cur.string()?),
        "internal" => CoreError::Internal { instr: instr.to_string(), message: cur.string()? },
        "stalled" => CoreError::Stalled { instr: instr.to_string() },
        _ => return None,
    })
}

fn parse_snapshot(cur: &mut Cursor, instr: &str) -> Option<TaskSnapshot> {
    let status = match cur.word()?.as_str() {
        "solved" => SnapStatus::Solved,
        "reused" => SnapStatus::Reused,
        "failed" => SnapStatus::Failed(parse_error(cur, instr)?),
        _ => return None,
    };
    cur.keyword("esc")?;
    let escalations = cur.number()?;
    cur.keyword("holes")?;
    let holes = match cur.word()?.as_str() {
        "none" => None,
        "[" => {
            let mut list = Vec::new();
            loop {
                match cur.tokens.next()? {
                    Token::Word(w) if w == "]" => break,
                    Token::Str(name) => {
                        let value: BitVec = cur.word()?.parse().ok()?;
                        list.push((name, value));
                    }
                    Token::Word(_) => return None,
                }
            }
            Some(list)
        }
        _ => return None,
    };
    cur.keyword("qlog")?;
    let mut qlog = QueryLog::default();
    let nums = parse_bracketed_numbers(cur, 11)?;
    qlog.sat_verified = nums[0];
    qlog.unsat_verified = nums[1];
    qlog.trivial = nums[2];
    qlog.unchecked = nums[3];
    qlog.terms_before = nums[4];
    qlog.terms_after = nums[5];
    qlog.cnf_vars = nums[6];
    qlog.cnf_clauses = nums[7];
    qlog.clauses_retained = nums[8];
    qlog.blast_cache_hits = nums[9];
    qlog.incremental_rounds = nums[10];
    cur.keyword("fails")?;
    cur.keyword("[")?;
    loop {
        match cur.tokens.next()? {
            Token::Word(w) if w == "]" => break,
            Token::Str(f) => qlog.failures.push(f),
            Token::Word(_) => return None,
        }
    }
    cur.keyword("stats")?;
    let stats = parse_bracketed_numbers(cur, 4)?;
    Some(TaskSnapshot {
        status,
        escalations,
        holes,
        qlog,
        cex_rounds: stats[0],
        solver_calls: stats[1],
        reused: stats[2],
        stat_escalations: stats[3],
    })
}

/// Parses `[n n ... n]` with exactly `count` numbers. The encoder glues
/// brackets to the first and last number, so split them off.
fn parse_bracketed_numbers(cur: &mut Cursor, count: usize) -> Option<Vec<usize>> {
    let mut nums = Vec::with_capacity(count);
    for i in 0..count {
        let mut w = cur.word()?;
        if i == 0 {
            w = w.strip_prefix('[')?.to_string();
        }
        if i + 1 == count {
            w = w.strip_suffix(']')?.to_string();
        }
        nums.push(w.parse().ok()?);
    }
    Some(nums)
}

/// Parses one record line, checking the CRC and the expected sequence
/// number. `None` means the record (and everything after it) must be
/// discarded.
fn parse_record(line: &str, expect_seq: u64) -> Option<Record> {
    let (body, crc_hex) = line.rsplit_once(" crc ")?;
    let stored = u32::from_str_radix(crc_hex.trim(), 16).ok()?;
    if crc32(body.as_bytes()) != stored {
        return None;
    }
    let mut cur = Cursor { tokens: tokenize(body)?.into_iter() };
    cur.keyword("rec")?;
    let seq: u64 = cur.number()?;
    if seq != expect_seq {
        return None;
    }
    let record = match cur.word()?.as_str() {
        "task" => {
            let instr = cur.string()?;
            let snap = parse_snapshot(&mut cur, &instr)?;
            Record::Task { instr, snap }
        }
        "retry" => {
            let instr = cur.string()?;
            let snap = parse_snapshot(&mut cur, &instr)?;
            Record::Retry { instr, snap }
        }
        "stall" => Record::Stall { instr: cur.string()? },
        "done" => Record::Done,
        _ => return None,
    };
    cur.at_end().then_some(record)
}

/// What a journal read recovered.
#[derive(Debug, Default)]
pub struct JournalContents {
    /// The header fingerprint, when the header was intact. `None` means
    /// the journal is unusable end to end (missing, empty, or corrupt
    /// header) and the session starts fresh.
    pub fingerprint: Option<u64>,
    /// Every intact record, in order, up to the first corruption.
    pub records: Vec<Record>,
    /// True when a trailing portion failed its CRC / parse and was
    /// discarded.
    pub truncated: bool,
    /// True when a `done` end marker was recovered.
    pub complete: bool,
}

/// Reads and validates a journal. Never fails: any I/O error or
/// corruption degrades to fewer (or zero) recovered records.
pub fn read_journal(io: &mut dyn JournalIo) -> JournalContents {
    let text = match io.read_all() {
        Ok(t) => t,
        Err(_) => return JournalContents::default(),
    };
    let mut out = JournalContents::default();
    let mut lines = text.lines();
    if lines.next() != Some(MAGIC) {
        return out;
    }
    // The fingerprint must be exactly 16 hex digits: a header line torn
    // mid-write would otherwise still parse — as a *different* value —
    // and make resume reject a journal that should simply read as empty.
    let fingerprint = match lines.next().and_then(|l| l.strip_prefix("fingerprint ")) {
        Some(hex)
            if hex.len() == 16 && hex.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            match u64::from_str_radix(hex, 16) {
                Ok(fp) => fp,
                Err(_) => return out,
            }
        }
        _ => return out,
    };
    out.fingerprint = Some(fingerprint);
    for line in lines {
        if line.is_empty() {
            continue;
        }
        match parse_record(line, out.records.len() as u64) {
            Some(rec) => {
                out.complete = matches!(rec, Record::Done);
                out.records.push(rec);
            }
            None => {
                out.truncated = true;
                break;
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// I/O
// ---------------------------------------------------------------------

/// Journal byte transport. The indirection exists so recovery paths are
/// testable: [`FileJournal`] injects deterministic I/O faults from the
/// session's [`FaultPlan`], and tests can substitute an in-memory
/// implementation.
pub trait JournalIo: Send {
    /// Appends one line (terminator added by the implementation) and
    /// makes it durable.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure (or an injected one).
    fn append_line(&mut self, line: &str) -> io::Result<()>;

    /// Reads the whole journal; missing backing storage reads as empty.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure (or an injected one).
    fn read_all(&mut self) -> io::Result<String>;

    /// Truncates the journal to empty (used when a resumed session
    /// rewrites its journal from the recovered prefix).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure (or an injected one).
    fn reset(&mut self) -> io::Result<()>;
}

/// Applies an injected I/O fault to a buffer-level operation. Returns
/// `Ok(bytes_to_write)` possibly shortened, or the injected error.
fn apply_write_fault(fault: Option<IoFault>, bytes: &[u8]) -> io::Result<&[u8]> {
    match fault {
        None => Ok(bytes),
        Some(IoFault::WriteError) => {
            Err(io::Error::other("injected journal write error (fault plan)"))
        }
        // A torn write: only a prefix reaches the disk, and the caller
        // sees the failure (as after a crash mid-write).
        Some(IoFault::ShortWrite(n)) => Ok(&bytes[..n.min(bytes.len())]),
        // Read-side fault; a write passes through untouched.
        Some(IoFault::FlipBit(_)) => Ok(bytes),
    }
}

/// The production [`JournalIo`]: an append-only file, one `fsync` per
/// record, faults injected from the session's [`FaultPlan`] I/O channel.
pub struct FileJournal {
    path: PathBuf,
    faults: Option<Arc<FaultPlan>>,
}

impl FileJournal {
    /// A file-backed journal at `path`; `faults` is the session's fault
    /// plan (its dedicated I/O counter drives injection).
    #[must_use]
    pub fn new(path: impl AsRef<Path>, faults: Option<Arc<FaultPlan>>) -> Self {
        FileJournal { path: path.as_ref().to_path_buf(), faults }
    }

    fn next_fault(&self) -> Option<IoFault> {
        self.faults.as_ref().and_then(|p| p.next_io_fault())
    }
}

impl JournalIo for FileJournal {
    fn append_line(&mut self, line: &str) -> io::Result<()> {
        use std::io::Write as _;
        let fault = self.next_fault();
        let mut bytes = line.as_bytes().to_vec();
        bytes.push(b'\n');
        let torn = matches!(fault, Some(IoFault::ShortWrite(_)));
        let payload = apply_write_fault(fault, &bytes)?;
        let mut file =
            std::fs::OpenOptions::new().create(true).append(true).open(&self.path)?;
        file.write_all(payload)?;
        file.sync_data()?;
        if torn {
            return Err(io::Error::other("injected short write (fault plan)"));
        }
        Ok(())
    }

    fn read_all(&mut self) -> io::Result<String> {
        let fault = self.next_fault();
        let mut bytes = match std::fs::read(&self.path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        if let Some(IoFault::FlipBit(bit)) = fault {
            if !bytes.is_empty() {
                let bit = bit % (bytes.len() as u64 * 8);
                bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
            }
        }
        String::from_utf8(bytes)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "journal is not UTF-8"))
    }

    fn reset(&mut self) -> io::Result<()> {
        std::fs::write(&self.path, b"")
    }
}

/// An in-memory [`JournalIo`] for tests (and a reference for the torn
/// write semantics: `append_line` under a `ShortWrite` fault keeps the
/// prefix, like a crash mid-write).
#[derive(Default)]
pub struct MemJournal {
    /// The stored bytes; tests may mutate them directly to model
    /// arbitrary corruption.
    pub bytes: Vec<u8>,
    /// Optional fault plan driving injection, as in [`FileJournal`].
    pub faults: Option<Arc<FaultPlan>>,
}

impl MemJournal {
    fn next_fault(&self) -> Option<IoFault> {
        self.faults.as_ref().and_then(|p| p.next_io_fault())
    }
}

impl JournalIo for MemJournal {
    fn append_line(&mut self, line: &str) -> io::Result<()> {
        let fault = self.next_fault();
        let mut bytes = line.as_bytes().to_vec();
        bytes.push(b'\n');
        let torn = matches!(fault, Some(IoFault::ShortWrite(_)));
        let payload = apply_write_fault(fault, &bytes)?;
        self.bytes.extend_from_slice(payload);
        if torn {
            return Err(io::Error::other("injected short write (fault plan)"));
        }
        Ok(())
    }

    fn read_all(&mut self) -> io::Result<String> {
        let fault = self.next_fault();
        let mut bytes = self.bytes.clone();
        if let Some(IoFault::FlipBit(bit)) = fault {
            if !bytes.is_empty() {
                let bit = bit % (bytes.len() as u64 * 8);
                bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
            }
        }
        String::from_utf8(bytes)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "journal is not UTF-8"))
    }

    fn reset(&mut self) -> io::Result<()> {
        self.bytes.clear();
        Ok(())
    }
}

/// The write side of a journal: thread-safe, append-only, and
/// *fail-open* — the first I/O error marks the writer broken and every
/// later append is a no-op, so durability degrades without ever failing
/// or wedging the synthesis run.
pub struct JournalWriter {
    io: Mutex<Box<dyn JournalIo>>,
    seq: AtomicU64,
    broken: AtomicBool,
}

impl std::fmt::Debug for JournalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournalWriter")
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .field("broken", &self.broken.load(Ordering::Relaxed))
            .finish()
    }
}

impl JournalWriter {
    /// Starts a fresh journal on `io`: truncates it and writes the
    /// sealed header. I/O failure leaves the writer broken (appends
    /// become no-ops), never an error.
    #[must_use]
    pub fn create(mut io: Box<dyn JournalIo>, fingerprint: u64) -> Self {
        let ok = io.reset().is_ok()
            && io.append_line(MAGIC).is_ok()
            && io.append_line(&format!("fingerprint {fingerprint:016x}")).is_ok();
        JournalWriter {
            io: Mutex::new(io),
            seq: AtomicU64::new(0),
            broken: AtomicBool::new(!ok),
        }
    }

    /// Appends one record. Serialized internally; safe to call from
    /// worker threads.
    pub fn append(&self, record: &Record) {
        if self.broken.load(Ordering::Relaxed) {
            return;
        }
        let mut io = self.io.lock().expect("journal writer poisoned");
        // Sequence under the lock so records and numbers stay aligned.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if io.append_line(&record.encode(seq)).is_err() {
            self.broken.store(true, Ordering::Relaxed);
        }
    }

    /// True once an I/O failure has disabled journaling for this run.
    #[must_use]
    pub fn is_broken(&self) -> bool {
        self.broken.load(Ordering::Relaxed)
    }

    /// Records appended so far (monotonic; testing/telemetry hook).
    #[must_use]
    pub fn records_written(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // splitmix64: the repo's standard deterministic generator (shared
    // definition; mirrors the workspace-root proptest suite).
    use owl_smt::hash::splitmix64_next as splitmix;

    fn arbitrary_string(state: &mut u64) -> String {
        let len = (splitmix(state) % 12) as usize;
        (0..len)
            .map(|_| {
                // Bias toward characters that stress the escaper.
                match splitmix(state) % 10 {
                    0 => '"',
                    1 => '\\',
                    2 => '\n',
                    3 => '\t',
                    4 => ' ',
                    5 => char::from_u32(0x0001 + (splitmix(state) % 0x1F) as u32).unwrap(),
                    // Multi-byte UTF-8 passes through unescaped.
                    6 => 'λ',
                    7 => '🦉',
                    _ => char::from_u32(0x61 + (splitmix(state) % 26) as u32).unwrap(),
                }
            })
            .collect()
    }

    fn arbitrary_error(state: &mut u64, instr: &str) -> CoreError {
        match splitmix(state) % 6 {
            0 => CoreError::NoSolution { instr: instr.to_string() },
            1 => CoreError::SolverExhausted { instr: instr.to_string() },
            2 => CoreError::NoConvergence {
                instr: instr.to_string(),
                rounds: (splitmix(state) % 1000) as usize,
            },
            3 => CoreError::Invalid(arbitrary_string(state)),
            4 => CoreError::Internal {
                instr: instr.to_string(),
                message: arbitrary_string(state),
            },
            _ => CoreError::Stalled { instr: instr.to_string() },
        }
    }

    fn arbitrary_snapshot(state: &mut u64, instr: &str) -> TaskSnapshot {
        let status = match splitmix(state) % 3 {
            0 => SnapStatus::Solved,
            1 => SnapStatus::Reused,
            _ => SnapStatus::Failed(arbitrary_error(state, instr)),
        };
        let holes = if matches!(status, SnapStatus::Failed(_)) && splitmix(state) % 2 == 0 {
            None
        } else {
            let n = (splitmix(state) % 4) as usize;
            Some(
                (0..n)
                    .map(|i| {
                        let width = 1 + (splitmix(state) % 80) as u32;
                        let value = BitVec::from_u64(width, splitmix(state));
                        (format!("h{i}_{}", arbitrary_string(state)), value)
                    })
                    .collect(),
            )
        };
        let mut qlog = QueryLog {
            sat_verified: (splitmix(state) % 50) as usize,
            unsat_verified: (splitmix(state) % 50) as usize,
            trivial: (splitmix(state) % 5) as usize,
            unchecked: (splitmix(state) % 5) as usize,
            terms_before: (splitmix(state) % 100_000) as usize,
            terms_after: (splitmix(state) % 100_000) as usize,
            cnf_vars: (splitmix(state) % 1_000_000) as usize,
            cnf_clauses: (splitmix(state) % 1_000_000) as usize,
            clauses_retained: (splitmix(state) % 100_000) as usize,
            blast_cache_hits: (splitmix(state) % 1_000) as usize,
            incremental_rounds: (splitmix(state) % 300) as usize,
            failures: Vec::new(),
        };
        for _ in 0..(splitmix(state) % 3) {
            qlog.failures.push(arbitrary_string(state));
        }
        TaskSnapshot {
            status,
            escalations: (splitmix(state) % 5) as u32,
            holes,
            qlog,
            cex_rounds: (splitmix(state) % 300) as usize,
            solver_calls: (splitmix(state) % 300) as usize,
            reused: (splitmix(state) % 2) as usize,
            stat_escalations: (splitmix(state) % 5) as usize,
        }
    }

    fn arbitrary_record(state: &mut u64) -> Record {
        let instr = format!("I{}_{}", splitmix(state) % 40, arbitrary_string(state));
        match splitmix(state) % 8 {
            0 => Record::Stall { instr },
            1 => Record::Done,
            2..=4 => {
                let snap = arbitrary_snapshot(state, &instr);
                Record::Retry { instr, snap }
            }
            _ => {
                let snap = arbitrary_snapshot(state, &instr);
                Record::Task { instr, snap }
            }
        }
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    /// Deterministic randomized round-trip sweep (256 cases), mirroring
    /// the proptest property at the workspace root without external
    /// dev-dependencies.
    #[test]
    fn record_encode_decode_round_trip() {
        let mut state = 0x01E_10AD_ED_u64;
        for _case in 0..256u64 {
            let rec = arbitrary_record(&mut state);
            let line = rec.encode(7);
            let back = parse_record(&line, 7)
                .unwrap_or_else(|| panic!("round-trip failed for {line:?}"));
            assert_eq!(back, rec, "line: {line}");
        }
    }

    #[test]
    fn wrong_sequence_number_rejects() {
        let rec = Record::Done;
        let line = rec.encode(3);
        assert!(parse_record(&line, 3).is_some());
        assert!(parse_record(&line, 4).is_none());
    }

    /// Flipping any single bit of an encoded record makes it either
    /// fail the CRC or (for flips inside the CRC field itself) mismatch
    /// the recomputed value — it never parses back differently.
    #[test]
    fn any_single_bit_flip_is_detected() {
        let mut state = 0xBADC_0FFE_u64;
        for _ in 0..16 {
            let rec = arbitrary_record(&mut state);
            let line = rec.encode(0);
            let bytes = line.as_bytes();
            for bit in 0..bytes.len() * 8 {
                let mut corrupt = bytes.to_vec();
                corrupt[bit / 8] ^= 1 << (bit % 8);
                let Ok(text) = String::from_utf8(corrupt) else { continue };
                if let Some(back) = parse_record(&text, 0) {
                    assert_eq!(
                        back, rec,
                        "bit {bit} of {line:?} produced a different record"
                    );
                }
            }
        }
    }

    /// A journal truncated at *every* byte offset still reads without
    /// panicking, recovers a prefix of the records, and reports the
    /// truncation when a partial record was discarded.
    #[test]
    fn truncation_at_every_offset_recovers_a_prefix() {
        let mut state = 0xD15C_0u64;
        let records: Vec<Record> = (0..5).map(|_| arbitrary_record(&mut state)).collect();
        let mut mem = MemJournal::default();
        mem.append_line(MAGIC).unwrap();
        mem.append_line(&format!("fingerprint {:016x}", 0xABCDu64)).unwrap();
        for (i, r) in records.iter().enumerate() {
            mem.append_line(&r.encode(i as u64)).unwrap();
        }
        let full = mem.bytes.clone();
        for cut in 0..=full.len() {
            let mut partial = MemJournal { bytes: full[..cut].to_vec(), faults: None };
            let contents = read_journal(&mut partial);
            if let Some(fp) = contents.fingerprint {
                assert_eq!(fp, 0xABCD);
            }
            assert!(contents.records.len() <= records.len());
            assert_eq!(
                contents.records.as_slice(),
                &records[..contents.records.len()],
                "cut at {cut}: recovered records must be an exact prefix"
            );
        }
        // The untouched journal recovers everything.
        let mut whole = MemJournal { bytes: full, faults: None };
        let contents = read_journal(&mut whole);
        assert_eq!(contents.fingerprint, Some(0xABCD));
        assert_eq!(contents.records, records);
        assert!(!contents.truncated);
    }

    #[test]
    fn corrupt_header_reads_as_empty() {
        for text in ["", "owl-journal v0\nfingerprint 00\n", "garbage\n", MAGIC, "owl-journal v1\nfingerprint zz\n"] {
            let mut mem = MemJournal { bytes: text.as_bytes().to_vec(), faults: None };
            let contents = read_journal(&mut mem);
            assert!(contents.fingerprint.is_none(), "header {text:?} must read as empty");
            assert!(contents.records.is_empty());
        }
    }

    #[test]
    fn writer_degrades_on_injected_write_error() {
        let plan = Arc::new(FaultPlan::new().io_at(2, IoFault::WriteError));
        let mem = MemJournal { bytes: Vec::new(), faults: Some(plan) };
        // Ops 0 and 1 are the header lines; op 2 (the first record)
        // fails and breaks the writer.
        let writer = JournalWriter::create(Box::new(mem), 1);
        assert!(!writer.is_broken());
        writer.append(&Record::Done);
        assert!(writer.is_broken());
        // Later appends are silent no-ops.
        writer.append(&Record::Done);
        assert_eq!(writer.records_written(), 1);
    }

    #[test]
    fn torn_write_keeps_prefix_and_later_read_recovers_earlier_records() {
        let plan = Arc::new(FaultPlan::new().io_at(3, IoFault::ShortWrite(10)));
        let mut mem = MemJournal { bytes: Vec::new(), faults: Some(plan.clone()) };
        mem.append_line(MAGIC).unwrap();
        mem.append_line(&format!("fingerprint {:016x}", 7u64)).unwrap();
        mem.append_line(&Record::Stall { instr: "A".into() }.encode(0)).unwrap();
        // Op 3: torn mid-record.
        let err = mem.append_line(&Record::Stall { instr: "B".into() }.encode(1));
        assert!(err.is_err());
        let contents = read_journal(&mut mem);
        assert_eq!(contents.fingerprint, Some(7));
        assert_eq!(contents.records, vec![Record::Stall { instr: "A".into() }]);
        assert!(contents.truncated);
    }

    #[test]
    fn flip_bit_on_read_drops_at_most_the_hit_record() {
        let mut mem = MemJournal::default();
        mem.append_line(MAGIC).unwrap();
        mem.append_line(&format!("fingerprint {:016x}", 7u64)).unwrap();
        let recs: Vec<Record> =
            (0..4).map(|i| Record::Stall { instr: format!("I{i}") }).collect();
        for (i, r) in recs.iter().enumerate() {
            mem.append_line(&r.encode(i as u64)).unwrap();
        }
        let bytes = mem.bytes.clone();
        for bit in (0..bytes.len() as u64 * 8).step_by(13) {
            let plan = Arc::new(FaultPlan::new().io_at(0, IoFault::FlipBit(bit)));
            let mut faulty = MemJournal { bytes: bytes.clone(), faults: Some(plan) };
            let contents = read_journal(&mut faulty);
            // Whatever was recovered is a correct prefix — possibly
            // empty when the flip hit the header.
            assert_eq!(
                contents.records.as_slice(),
                &recs[..contents.records.len()],
                "bit {bit}"
            );
        }
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let mut a = Fnv64::default();
        a.field("ab");
        a.field("c");
        let mut b = Fnv64::default();
        b.field("a");
        b.field("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
