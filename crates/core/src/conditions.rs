//! Extraction of per-instruction pre/postconditions from an ILA
//! specification, an abstraction function, and a datapath's symbolic
//! trace — the instantiation of the paper's Equation (1):
//!
//! ```text
//! Pre_j[s_spec := α(s_0)]  ->  Post_j[s_spec := α(s_1, ..., s_k)]
//! ```
//!
//! Reads route through α's read time steps into the trace's snapshots;
//! updates are checked against the write time steps. Memory updates are
//! compared *extensionally*: a fresh universally-quantified address `x`
//! per specification memory asserts that the datapath's write-back-stage
//! effect applied to the read-time state equals the specification's
//! store(s) — which both forces the stored word to land and forces every
//! spurious enabled write off, the "set other control signals to false"
//! behaviour visible in the paper's Fig. 7.

use crate::abstraction::{AbstractionFn, DatapathKind, Mapping};
use crate::CoreError;
use owl_ila::compile::{compile_expr, SpecResolver};
use owl_ila::{Ila, IlaError, Instr, SpecSort};
use owl_oyster::{SymbolicMem, SymbolicTrace};
use owl_smt::{RomId, TermId, TermManager};
use std::collections::HashMap;

/// The compiled conditions for one instruction.
#[derive(Debug, Clone)]
pub struct InstrConditions {
    /// Instruction name.
    pub name: String,
    /// Preconditions: the decode condition plus α's assumption signals.
    pub pres: Vec<TermId>,
    /// Postconditions: one equality per checked state element.
    pub posts: Vec<TermId>,
}

/// Resolves specification reads against the trace at α's read time steps.
struct PreResolver<'a> {
    alpha: &'a AbstractionFn,
    trace: &'a SymbolicTrace,
}

impl PreResolver<'_> {
    fn mapping_or_err(&self, name: &str) -> Result<&Mapping, IlaError> {
        self.alpha
            .read_mapping(name)
            .ok_or_else(|| IlaError::new(format!("no read mapping for spec state {name}")))
    }
}

impl SpecResolver for PreResolver<'_> {
    fn resolve_ref(&mut self, _mgr: &mut TermManager, name: &str) -> Result<TermId, IlaError> {
        let m = self.mapping_or_err(name)?;
        let rt = m.reads[0];
        match m.kind {
            DatapathKind::Input => self
                .trace
                .inputs
                .get(&m.datapath_name)
                .copied()
                .ok_or_else(|| IlaError::new(format!("datapath has no input {}", m.datapath_name))),
            DatapathKind::Register => self
                .trace
                .at_time(rt)
                .regs
                .get(&m.datapath_name)
                .copied()
                .ok_or_else(|| {
                    IlaError::new(format!("datapath has no register {}", m.datapath_name))
                }),
            DatapathKind::Output => self
                .trace
                .snapshots
                .get(rt as usize)
                .and_then(|s| s.wires.get(&m.datapath_name))
                .copied()
                .ok_or_else(|| {
                    IlaError::new(format!(
                        "datapath has no wire {} at time {rt}",
                        m.datapath_name
                    ))
                }),
            DatapathKind::Memory => {
                Err(IlaError::new(format!("{name} is memory-mapped; use Load")))
            }
        }
    }

    fn resolve_load(
        &mut self,
        mgr: &mut TermManager,
        name: &str,
        addr: TermId,
    ) -> Result<TermId, IlaError> {
        let m = self.mapping_or_err(name)?;
        if m.kind != DatapathKind::Memory {
            return Err(IlaError::new(format!("{name} is not memory-mapped")));
        }
        let rt = m.reads[0];
        let mem = self
            .trace
            .at_time(rt)
            .mems
            .get(&m.datapath_name)
            .cloned()
            .ok_or_else(|| IlaError::new(format!("datapath has no memory {}", m.datapath_name)))?;
        Ok(mem.read(mgr, addr))
    }
}

/// Builds [`InstrConditions`] for every instruction of a specification
/// against one symbolic trace.
pub struct ConditionBuilder<'a> {
    ila: &'a Ila,
    alpha: &'a AbstractionFn,
    trace: &'a SymbolicTrace,
    rom_cache: HashMap<String, RomId>,
    /// One universal frame address per specification memory, shared
    /// across instructions.
    frame_addrs: HashMap<String, TermId>,
}

impl<'a> ConditionBuilder<'a> {
    /// Creates a builder; validates the abstraction function and spec.
    ///
    /// # Errors
    ///
    /// Returns an error if either input fails its own check.
    pub fn new(
        ila: &'a Ila,
        alpha: &'a AbstractionFn,
        trace: &'a SymbolicTrace,
    ) -> Result<Self, CoreError> {
        ila.check().map_err(CoreError::from)?;
        alpha.check().map_err(CoreError::from)?;
        if alpha.cycles() as usize != trace.cycles() {
            return Err(CoreError::new(format!(
                "abstraction function expects {} cycles but the trace has {}",
                alpha.cycles(),
                trace.cycles()
            )));
        }
        Ok(ConditionBuilder {
            ila,
            alpha,
            trace,
            rom_cache: HashMap::new(),
            frame_addrs: HashMap::new(),
        })
    }

    /// Points specification lookup tables at same-named datapath ROMs with
    /// identical contents, so that spec-side and datapath-side table reads
    /// share a ROM handle and structurally equal lookups fold away (the
    /// AES S-box case). Call once before building conditions.
    pub fn share_roms(&mut self, mgr: &TermManager) {
        for (name, aw, dw, data) in self.ila.tables() {
            if let Some(&rom) = self.trace.roms.get(name) {
                let (raw, rdw) = mgr.rom_widths(rom);
                if raw == *aw && rdw == *dw && mgr.rom_data(rom) == data.as_slice() {
                    self.rom_cache.insert(name.clone(), rom);
                }
            }
        }
    }

    fn compile(&mut self, mgr: &mut TermManager, e: &owl_ila::SpecExpr) -> Result<TermId, CoreError> {
        let mut resolver = PreResolver { alpha: self.alpha, trace: self.trace };
        compile_expr(mgr, self.ila, e, &mut resolver, &mut self.rom_cache).map_err(CoreError::from)
    }

    /// Looks up a named signal in the trace for assumption handling.
    fn signal_at(&self, name: &str, t: u32) -> Result<TermId, CoreError> {
        let snap = self
            .trace
            .snapshots
            .get(t as usize)
            .ok_or_else(|| CoreError::new(format!("assume {name}: time {t} out of range")))?;
        snap.wires
            .get(name)
            .or_else(|| snap.regs.get(name))
            .or_else(|| self.trace.inputs.get(name))
            .copied()
            .ok_or_else(|| CoreError::new(format!("assume signal {name} not found at time {t}")))
    }

    /// Builds the conditions for one instruction.
    ///
    /// # Errors
    ///
    /// Returns an error if a specification reference has no α mapping or
    /// the mapped datapath component does not exist.
    pub fn instr_conditions(
        &mut self,
        mgr: &mut TermManager,
        instr: &Instr,
    ) -> Result<InstrConditions, CoreError> {
        let mut pres = Vec::new();
        let decode = self.compile(mgr, instr.decode()?)?;
        pres.push(mgr.red_or(decode));
        for (sig, t) in self.alpha.assumes() {
            let s = self.signal_at(sig, *t)?;
            pres.push(mgr.red_or(s));
        }

        let mut posts = Vec::new();

        // Bitvector state elements with a write mapping: either the
        // instruction's update or a frame condition (unchanged).
        for var in self.ila.vars() {
            if var.is_input {
                continue;
            }
            match var.sort {
                SpecSort::Bv(_) => {
                    let Some(wm) = self.alpha.write_mapping(&var.name) else {
                        continue;
                    };
                    let wt = wm.writes[0];
                    let actual = match wm.kind {
                        DatapathKind::Register => self
                            .trace
                            .after_cycle(wt)
                            .regs
                            .get(&wm.datapath_name)
                            .copied()
                            .ok_or_else(|| {
                                CoreError::new(format!(
                                    "datapath has no register {}",
                                    wm.datapath_name
                                ))
                            })?,
                        DatapathKind::Output => self
                            .trace
                            .snapshots
                            .get(wt as usize)
                            .and_then(|s| s.wires.get(&wm.datapath_name))
                            .copied()
                            .ok_or_else(|| {
                                CoreError::new(format!(
                                    "datapath has no wire {} at time {wt}",
                                    wm.datapath_name
                                ))
                            })?,
                        _ => {
                            return Err(CoreError::new(format!(
                                "write mapping for {} must be a register or output",
                                var.name
                            )))
                        }
                    };
                    let update =
                        instr.bv_updates().iter().find(|(s, _)| *s == var.name).map(|(_, e)| e);
                    let expected = match update {
                        Some(e) => self.compile(mgr, &e.clone())?,
                        None => {
                            // Frame: the element keeps its read-time value.
                            let e = owl_ila::SpecExpr::var(&var.name);
                            self.compile(mgr, &e)?
                        }
                    };
                    posts.push(mgr.eq(actual, expected));
                }
                SpecSort::Mem { addr_width, .. } => {
                    let Some(wm) = self.alpha.write_mapping(&var.name) else {
                        continue;
                    };
                    let wt = wm.writes[0];
                    let old_t = wm.reads.first().copied().unwrap_or(wt);
                    let old = self
                        .trace
                        .at_time(old_t)
                        .mems
                        .get(&wm.datapath_name)
                        .cloned()
                        .ok_or_else(|| {
                            CoreError::new(format!(
                                "datapath has no memory {}",
                                wm.datapath_name
                            ))
                        })?;
                    // The write-back delta: writes committed during cycle wt.
                    let before =
                        self.trace.after_cycle(wt - 1).mems[&wm.datapath_name].writes.len();
                    let after_mem = &self.trace.after_cycle(wt).mems[&wm.datapath_name];
                    let delta = after_mem.writes[before..].to_vec();
                    let mut effect =
                        SymbolicMem { base: old.base, writes: old.writes.clone() };
                    effect.writes.extend(delta);

                    // Universal frame address for extensional equality.
                    let x = *self
                        .frame_addrs
                        .entry(var.name.clone())
                        .or_insert_with(|| mgr.fresh_var(format!("frame_{}", var.name), addr_width));

                    let actual = effect.read(mgr, x);
                    // Specification side: apply the instruction's stores
                    // over the old state, in order.
                    let mut expected = old.read(mgr, x);
                    for (mname, update) in instr.mem_updates() {
                        if *mname != var.name {
                            continue;
                        }
                        let addr = self.compile(mgr, &update.addr.clone())?;
                        let data = self.compile(mgr, &update.data.clone())?;
                        let mut hit = mgr.eq(x, addr);
                        if let Some(c) = &update.cond {
                            let cv = self.compile(mgr, &c.clone())?;
                            let cv = mgr.red_or(cv);
                            hit = mgr.and(hit, cv);
                        }
                        expected = mgr.ite(hit, data, expected);
                    }
                    posts.push(mgr.eq(actual, expected));
                }
            }
        }

        Ok(InstrConditions { name: instr.name().to_string(), pres, posts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_bitvec::BitVec;
    use owl_ila::SpecExpr;
    use owl_oyster::{Design, SymbolicEvaluator};
    use owl_smt::{solve, substitute, Env, SmtResult};

    /// A 1-cycle incrementer: spec says acc' = acc + 1 when go.
    fn inc_setup() -> (Ila, Design, AbstractionFn) {
        let mut ila = Ila::new("inc");
        let go = ila.new_bv_input("go", 1);
        let acc = ila.new_bv_state("acc", 8);
        let mut i = Instr::new("INC");
        i.set_decode(go.eq(SpecExpr::const_u64(1, 1)));
        i.set_update("acc", acc.add(SpecExpr::const_u64(8, 1)));
        ila.add_instr(i);

        let d: Design = "design inc_dp\ninput go 1\nhole en 1\nregister acc 8\n\
                         acc := if en then acc + 8'x01 else acc\nend\n"
            .parse()
            .unwrap();

        let mut alpha = AbstractionFn::new(1);
        alpha.map_input("go", "go");
        alpha.map("acc", "acc", DatapathKind::Register, [1], [1]);
        (ila, d, alpha)
    }

    #[test]
    fn conditions_validate_correct_hole() {
        let (ila, d, alpha) = inc_setup();
        let mut mgr = TermManager::new();
        let trace = SymbolicEvaluator::run(&mut mgr, &d, 1).unwrap();
        let mut builder = ConditionBuilder::new(&ila, &alpha, &trace).unwrap();
        let conds = builder.instr_conditions(&mut mgr, &ila.instrs()[0]).unwrap();
        assert_eq!(conds.pres.len(), 1);
        assert_eq!(conds.posts.len(), 1);

        // With en := 1, pre ∧ ¬post must be UNSAT.
        let mut env = Env::new();
        let hole_sym = mgr.as_var(trace.holes["en"]).unwrap();
        env.set_var(hole_sym, BitVec::from_u64(1, 1));
        let pre = substitute(&mut mgr, conds.pres[0], &env);
        let post = substitute(&mut mgr, conds.posts[0], &env);
        let npost = mgr.not(post);
        assert!(solve(&mut mgr, &[pre, npost], None).result.is_unsat());

        // With en := 0 there is a counterexample.
        let mut env0 = Env::new();
        env0.set_var(hole_sym, BitVec::from_u64(1, 0));
        let pre0 = substitute(&mut mgr, conds.pres[0], &env0);
        let post0 = substitute(&mut mgr, conds.posts[0], &env0);
        let npost0 = mgr.not(post0);
        assert!(matches!(solve(&mut mgr, &[pre0, npost0], None).result, SmtResult::Sat(_)));
    }

    #[test]
    fn memory_frame_blocks_spurious_writes() {
        // Spec: NOP does nothing. Datapath writes rf[0] when hole w is on.
        let mut ila = Ila::new("nop");
        let go = ila.new_bv_input("go", 1);
        ila.new_mem_state("regs", 2, 8);
        let mut i = Instr::new("NOP");
        i.set_decode(go.eq(SpecExpr::const_u64(1, 1)));
        ila.add_instr(i);

        let d: Design = "design dp\ninput go 1\nhole w 1\nmemory rf 2 8\n\
                         write rf[2'x0] := 8'xff when w\nend\n"
            .parse()
            .unwrap();
        let mut alpha = AbstractionFn::new(1);
        alpha.map_input("go", "go");
        alpha.map("regs", "rf", DatapathKind::Memory, [1], [1]);

        let mut mgr = TermManager::new();
        let trace = SymbolicEvaluator::run(&mut mgr, &d, 1).unwrap();
        let mut builder = ConditionBuilder::new(&ila, &alpha, &trace).unwrap();
        let conds = builder.instr_conditions(&mut mgr, &ila.instrs()[0]).unwrap();

        let hole_sym = mgr.as_var(trace.holes["w"]).unwrap();
        // w = 1 violates the frame condition.
        let mut env = Env::new();
        env.set_var(hole_sym, BitVec::from_u64(1, 1));
        let pre = substitute(&mut mgr, conds.pres[0], &env);
        let post = substitute(&mut mgr, conds.posts[0], &env);
        let npost = mgr.not(post);
        assert!(matches!(solve(&mut mgr, &[pre, npost], None).result, SmtResult::Sat(_)));
        // w = 0 satisfies it.
        let mut env0 = Env::new();
        env0.set_var(hole_sym, BitVec::from_u64(1, 0));
        let pre0 = substitute(&mut mgr, conds.pres[0], &env0);
        let post0 = substitute(&mut mgr, conds.posts[0], &env0);
        let npost0 = mgr.not(post0);
        assert!(solve(&mut mgr, &[pre0, npost0], None).result.is_unsat());
    }

    #[test]
    fn cycle_mismatch_rejected() {
        let (ila, d, alpha) = inc_setup();
        let mut mgr = TermManager::new();
        let trace = SymbolicEvaluator::run(&mut mgr, &d, 2).unwrap();
        assert!(ConditionBuilder::new(&ila, &alpha, &trace).is_err());
    }

    #[test]
    fn missing_mapping_reported() {
        let (ila, d, _) = inc_setup();
        let alpha = {
            let mut a = AbstractionFn::new(1);
            a.map("acc", "acc", DatapathKind::Register, [1], [1]);
            a
        };
        let mut mgr = TermManager::new();
        let trace = SymbolicEvaluator::run(&mut mgr, &d, 1).unwrap();
        let mut builder = ConditionBuilder::new(&ila, &alpha, &trace).unwrap();
        let err = builder.instr_conditions(&mut mgr, &ila.instrs()[0]).unwrap_err();
        assert!(err.to_string().contains("no read mapping"));
    }
}
