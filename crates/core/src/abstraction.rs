//! Abstraction functions (paper §3.2): the lightweight microarchitectural
//! model mapping architectural state in the specification to datapath
//! components, annotated with read/write timing.
//!
//! Both a builder API and the paper's text grammar are supported:
//!
//! ```text
//! pc:   {name: 'pc',   type: register, [read: 1, write: 2]}
//! GPR:  {name: 'rf',   type: memory,   [read: 1, write: 2]}
//! mem:  {name: 'd_mem', type: memory,  [read: 2, write: 2]}
//! imem: {name: 'i_mem', type: memory,  [read: 1]}
//! with cycles: 2, [instruction_valid: 1]
//! ```

use std::fmt;

/// The datapath component type a specification state maps onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatapathKind {
    /// A datapath input port.
    Input,
    /// A datapath output (a named wire).
    Output,
    /// A register.
    Register,
    /// A memory.
    Memory,
}

impl fmt::Display for DatapathKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DatapathKind::Input => "input",
            DatapathKind::Output => "output",
            DatapathKind::Register => "register",
            DatapathKind::Memory => "memory",
        };
        f.write_str(s)
    }
}

/// One mapping entry: a specification state element bound to a datapath
/// component with read/write time steps.
///
/// Time steps are 1-based: "TimeStep *i* > 0 is the state of the datapath
/// after updating all registers and memories with the results of the
/// (*i* − 1)-th step of evaluation", so a read at time 1 sees the initial
/// state, and a write at time *t* is checked against the state after the
/// *t*-th cycle's commits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    /// Name of the state element in the specification.
    pub spec_name: String,
    /// Name of the corresponding datapath component.
    pub datapath_name: String,
    /// Kind of the datapath component.
    pub kind: DatapathKind,
    /// Time steps at which the specification's reads observe this
    /// component (empty if never read through this mapping).
    pub reads: Vec<u32>,
    /// Time steps at which the specification's writes are checked against
    /// this component (empty if read-only).
    pub writes: Vec<u32>,
}

/// Error produced by abstraction-function validation or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbstractionError {
    message: String,
}

impl AbstractionError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        AbstractionError { message: message.into() }
    }
}

impl fmt::Display for AbstractionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "abstraction function error: {}", self.message)
    }
}

impl std::error::Error for AbstractionError {}

/// The abstraction function α: mappings, the number of cycles to evaluate
/// the sketch, and assumption signals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbstractionFn {
    mappings: Vec<Mapping>,
    cycles: u32,
    assumes: Vec<(String, u32)>,
}

impl AbstractionFn {
    /// Creates an abstraction function evaluating `cycles` cycles (for a
    /// pipelined datapath this is the pipeline depth).
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    #[must_use]
    pub fn new(cycles: u32) -> Self {
        assert!(cycles > 0, "abstraction function needs at least one cycle");
        AbstractionFn { mappings: Vec::new(), cycles, assumes: Vec::new() }
    }

    /// The number of cycles the symbolic evaluator runs the sketch.
    #[must_use]
    pub fn cycles(&self) -> u32 {
        self.cycles
    }

    /// The mapping entries, in declaration order.
    #[must_use]
    pub fn mappings(&self) -> &[Mapping] {
        &self.mappings
    }

    /// Assumption signals: datapath wires assumed true at the given time
    /// step (conjoined into every instruction's precondition).
    #[must_use]
    pub fn assumes(&self) -> &[(String, u32)] {
        &self.assumes
    }

    /// Adds a mapping entry.
    pub fn map(
        &mut self,
        spec_name: impl Into<String>,
        datapath_name: impl Into<String>,
        kind: DatapathKind,
        reads: impl IntoIterator<Item = u32>,
        writes: impl IntoIterator<Item = u32>,
    ) -> &mut Self {
        self.mappings.push(Mapping {
            spec_name: spec_name.into(),
            datapath_name: datapath_name.into(),
            kind,
            reads: reads.into_iter().collect(),
            writes: writes.into_iter().collect(),
        });
        self
    }

    /// Convenience: maps a spec input to a datapath input read at time 1.
    pub fn map_input(&mut self, spec_name: impl Into<String>, datapath_name: impl Into<String>) -> &mut Self {
        self.map(spec_name, datapath_name, DatapathKind::Input, [1], [])
    }

    /// Adds an assumption: datapath signal `name` is true at time `step`.
    pub fn assume(&mut self, name: impl Into<String>, step: u32) -> &mut Self {
        self.assumes.push((name.into(), step));
        self
    }

    /// The mapping whose spec name is `spec` and which declares a read
    /// (the first such mapping, matching the paper's multi-entry rule).
    #[must_use]
    pub fn read_mapping(&self, spec: &str) -> Option<&Mapping> {
        self.mappings
            .iter()
            .find(|m| m.spec_name == spec && !m.reads.is_empty())
    }

    /// The mapping whose spec name is `spec` and which declares a write.
    #[must_use]
    pub fn write_mapping(&self, spec: &str) -> Option<&Mapping> {
        self.mappings
            .iter()
            .find(|m| m.spec_name == spec && !m.writes.is_empty())
    }

    /// Validates time steps against the cycle count.
    ///
    /// # Errors
    ///
    /// Returns an error if any read or write time step is zero or exceeds
    /// the evaluated window.
    pub fn check(&self) -> Result<(), AbstractionError> {
        for m in &self.mappings {
            for &t in &m.reads {
                if t == 0 || t > self.cycles + 1 {
                    return Err(AbstractionError::new(format!(
                        "{}: read time {t} outside 1..={}",
                        m.spec_name,
                        self.cycles + 1
                    )));
                }
            }
            for &t in &m.writes {
                if t == 0 || t > self.cycles {
                    return Err(AbstractionError::new(format!(
                        "{}: write time {t} outside 1..={}",
                        m.spec_name, self.cycles
                    )));
                }
            }
            if m.kind != DatapathKind::Memory && m.reads.len() > 1 {
                return Err(AbstractionError::new(format!(
                    "{}: non-memory mappings take a single read time",
                    m.spec_name
                )));
            }
        }
        for (name, t) in &self.assumes {
            if *t == 0 || *t > self.cycles {
                return Err(AbstractionError::new(format!(
                    "assume {name}: time {t} outside 1..={}",
                    self.cycles
                )));
            }
        }
        Ok(())
    }

    /// Parses the paper's α text grammar.
    ///
    /// # Errors
    ///
    /// Returns an error describing the first syntax problem.
    pub fn parse(text: &str) -> Result<Self, AbstractionError> {
        let mut mappings = Vec::new();
        let mut cycles = None;
        let mut assumes = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split(';').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: String| AbstractionError::new(format!("line {}: {msg}", lineno + 1));
            if let Some(rest) = line.strip_prefix("with ") {
                // with cycles: N [, [sig: t, sig: t]]
                let rest = rest.trim();
                let rest = rest
                    .strip_prefix("cycles:")
                    .ok_or_else(|| err("expected 'cycles:' after 'with'".into()))?
                    .trim();
                let (num, tail) = match rest.split_once(',') {
                    Some((n, t)) => (n.trim(), t.trim()),
                    None => (rest, ""),
                };
                cycles = Some(
                    num.parse::<u32>()
                        .map_err(|_| err(format!("bad cycle count {num:?}")))?,
                );
                if !tail.is_empty() {
                    let inner = tail
                        .strip_prefix('[')
                        .and_then(|t| t.strip_suffix(']'))
                        .ok_or_else(|| err("assumptions must be bracketed".into()))?;
                    for part in inner.split(',') {
                        let (sig, t) = part
                            .split_once(':')
                            .ok_or_else(|| err(format!("bad assumption {part:?}")))?;
                        assumes.push((
                            sig.trim().to_string(),
                            t.trim()
                                .parse::<u32>()
                                .map_err(|_| err(format!("bad assumption time {t:?}")))?,
                        ));
                    }
                }
                continue;
            }
            // spec: {name: 'dp', type: kind, [read: 1, write: 3]}
            let (spec, rest) = line
                .split_once(':')
                .ok_or_else(|| err("expected 'spec: {...}'".into()))?;
            let body = rest
                .trim()
                .strip_prefix('{')
                .and_then(|t| t.strip_suffix('}'))
                .ok_or_else(|| err("mapping body must be braced".into()))?;
            let mut dp_name = None;
            let mut kind = None;
            let mut reads = Vec::new();
            let mut writes = Vec::new();
            // Split the body on commas not inside brackets.
            let mut depth = 0usize;
            let mut fields = Vec::new();
            let mut cur = String::new();
            for c in body.chars() {
                match c {
                    '[' => {
                        depth += 1;
                        cur.push(c);
                    }
                    ']' => {
                        depth -= 1;
                        cur.push(c);
                    }
                    ',' if depth == 0 => {
                        fields.push(cur.trim().to_string());
                        cur = String::new();
                    }
                    _ => cur.push(c),
                }
            }
            if !cur.trim().is_empty() {
                fields.push(cur.trim().to_string());
            }
            for field in fields {
                if let Some(v) = field.strip_prefix("name:") {
                    dp_name = Some(v.trim().trim_matches('\'').trim_matches('"').to_string());
                } else if let Some(v) = field.strip_prefix("type:") {
                    kind = Some(match v.trim() {
                        "input" => DatapathKind::Input,
                        "output" => DatapathKind::Output,
                        "register" | "regster" => DatapathKind::Register,
                        "memory" => DatapathKind::Memory,
                        other => return Err(err(format!("unknown type {other:?}"))),
                    });
                } else if field.starts_with('[') {
                    let inner = field
                        .strip_prefix('[')
                        .and_then(|t| t.strip_suffix(']'))
                        .ok_or_else(|| err("effects must be bracketed".into()))?;
                    for part in inner.split(',') {
                        let (eff, t) = part
                            .split_once(':')
                            .ok_or_else(|| err(format!("bad effect {part:?}")))?;
                        let t: u32 = t
                            .trim()
                            .parse()
                            .map_err(|_| err(format!("bad effect time {t:?}")))?;
                        match eff.trim() {
                            "read" => reads.push(t),
                            "write" => writes.push(t),
                            other => return Err(err(format!("unknown effect {other:?}"))),
                        }
                    }
                } else {
                    return Err(err(format!("unknown field {field:?}")));
                }
            }
            mappings.push(Mapping {
                spec_name: spec.trim().to_string(),
                datapath_name: dp_name.ok_or_else(|| err("missing name".into()))?,
                kind: kind.ok_or_else(|| err("missing type".into()))?,
                reads,
                writes,
            });
        }
        let cycles = cycles.ok_or_else(|| AbstractionError::new("missing 'with cycles:'"))?;
        if cycles == 0 {
            return Err(AbstractionError::new("cycle count must be positive"));
        }
        let alpha = AbstractionFn { mappings, cycles, assumes };
        alpha.check()?;
        Ok(alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let mut a = AbstractionFn::new(3);
        a.map_input("op", "op")
            .map("regs", "regfile", DatapathKind::Memory, [1], [3])
            .assume("instruction_valid", 1);
        assert!(a.check().is_ok());
        assert_eq!(a.read_mapping("regs").unwrap().datapath_name, "regfile");
        assert_eq!(a.write_mapping("regs").unwrap().writes, vec![3]);
        assert!(a.write_mapping("op").is_none());
        assert_eq!(a.assumes(), &[("instruction_valid".to_string(), 1)]);
    }

    #[test]
    fn parse_alu_example() {
        // The paper's three-stage ALU abstraction function.
        let a = AbstractionFn::parse(
            "op: {name: 'op', type: input, [read: 1]}\n\
             src1: {name: 'src1', type: input, [read: 1]}\n\
             src2: {name: 'src2', type: input, [read: 1]}\n\
             dest: {name: 'dest', type: input, [read: 1]}\n\
             regs: {name: 'regfile', type: memory, [read: 1, write: 3]}\n\
             with cycles: 3\n",
        )
        .unwrap();
        assert_eq!(a.cycles(), 3);
        assert_eq!(a.mappings().len(), 5);
        let regs = a.read_mapping("regs").unwrap();
        assert_eq!(regs.kind, DatapathKind::Memory);
        assert_eq!(regs.reads, vec![1]);
        assert_eq!(regs.writes, vec![3]);
    }

    #[test]
    fn parse_with_assumptions() {
        // The crypto core's abstraction function (paper §4.2).
        let a = AbstractionFn::parse(
            "pc: {name: 'pc', type: register, [read: 1, write: 2]}\n\
             GPR: {name: 'rf', type: memory, [read: 2, write: 3]}\n\
             mem: {name: 'd_mem', type: memory, [read: 3, write: 3]}\n\
             imem: {name: 'i_mem', type: memory, [read: 1]}\n\
             with cycles: 3, [instruction_valid: 1]\n",
        )
        .unwrap();
        assert_eq!(a.cycles(), 3);
        assert_eq!(a.assumes(), &[("instruction_valid".to_string(), 1)]);
        assert!(a.write_mapping("imem").is_none());
    }

    #[test]
    fn parse_split_memory_entries() {
        let a = AbstractionFn::parse(
            "mem: {name: 'i_mem', type: memory, [read: 1]}\n\
             mem: {name: 'd_mem', type: memory, [read: 2, write: 3]}\n\
             with cycles: 3\n",
        )
        .unwrap();
        // Read resolves to the first read-declaring entry; write to the
        // write-declaring one.
        assert_eq!(a.read_mapping("mem").unwrap().datapath_name, "i_mem");
        assert_eq!(a.write_mapping("mem").unwrap().datapath_name, "d_mem");
    }

    #[test]
    fn parse_errors() {
        assert!(AbstractionFn::parse("pc {bad}\n").is_err());
        assert!(AbstractionFn::parse("with cycles: 0\n").is_err());
        assert!(AbstractionFn::parse("pc: {name: 'pc', type: register, [read: 1]}\n").is_err());
        assert!(AbstractionFn::parse(
            "pc: {name: 'pc', type: registerino, [read: 1]}\nwith cycles: 1\n"
        )
        .is_err());
        // Write beyond the window.
        assert!(AbstractionFn::parse(
            "pc: {name: 'pc', type: register, [read: 1, write: 3]}\nwith cycles: 2\n"
        )
        .is_err());
    }

    #[test]
    fn comments_ignored() {
        let a = AbstractionFn::parse(
            "; the program counter\npc: {name: 'pc', type: register, [read: 1, write: 1]}\nwith cycles: 1\n",
        )
        .unwrap();
        assert_eq!(a.mappings().len(), 1);
    }
}
