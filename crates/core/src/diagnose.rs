//! Developer feedback for failed synthesis — the future-work item of the
//! paper's §5.3 ("extend the tool to indicate which part of the datapath
//! is incorrect").
//!
//! When an instruction admits no hole assignment, [`diagnose`] narrows
//! the blame: each postcondition is re-attempted *in isolation*, so the
//! report separates state elements the datapath can satisfy from those
//! it cannot, and for unsatisfiable ones it exhibits a concrete
//! counterexample trace (inputs and initial state) under the best
//! candidate the solver could find.

use crate::abstraction::AbstractionFn;
use crate::conditions::{ConditionBuilder, InstrConditions};
use crate::CoreError;
use owl_bitvec::BitVec;
use owl_ila::Ila;
use owl_oyster::{Design, SymbolicEvaluator};
use owl_smt::{solve, substitute, Env, SmtResult, TermManager};
use std::fmt;

/// Whether one obligation is achievable by some hole assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObligationStatus {
    /// Some hole assignment satisfies this obligation alone.
    SatisfiableAlone,
    /// No hole assignment satisfies even this single obligation: the
    /// datapath cannot produce the required update for this state
    /// element. Carries a human-readable counterexample.
    Unsatisfiable {
        /// Rendering of a counterexample initial state.
        counterexample: String,
    },
}

/// The diagnosis for one instruction.
#[derive(Debug, Clone)]
pub struct Diagnosis {
    /// Instruction name.
    pub instr: String,
    /// True if the instruction's decode condition is itself
    /// unsatisfiable (dead instruction).
    pub decode_unsatisfiable: bool,
    /// Status per checked specification state element, in declaration
    /// order.
    pub obligations: Vec<(String, ObligationStatus)>,
}

impl Diagnosis {
    /// Names of the state elements whose updates the datapath cannot
    /// implement.
    #[must_use]
    pub fn blamed_state(&self) -> Vec<&str> {
        self.obligations
            .iter()
            .filter(|(_, s)| matches!(s, ObligationStatus::Unsatisfiable { .. }))
            .map(|(n, _)| n.as_str())
            .collect()
    }
}

impl fmt::Display for Diagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "diagnosis for instruction {}:", self.instr)?;
        if self.decode_unsatisfiable {
            writeln!(f, "  decode condition is unsatisfiable (dead instruction)")?;
        }
        for (name, status) in &self.obligations {
            match status {
                ObligationStatus::SatisfiableAlone => {
                    writeln!(f, "  {name}: satisfiable in isolation")?;
                }
                ObligationStatus::Unsatisfiable { counterexample } => {
                    writeln!(
                        f,
                        "  {name}: NO control logic can produce this update \
                         (datapath lacks the required path)"
                    )?;
                    writeln!(f, "    counterexample: {counterexample}")?;
                }
            }
        }
        Ok(())
    }
}

/// The per-obligation names, matching the order [`ConditionBuilder`]
/// emits postconditions.
fn post_names(ila: &Ila, alpha: &AbstractionFn) -> Vec<String> {
    ila.vars()
        .iter()
        .filter(|v| !v.is_input && alpha.write_mapping(&v.name).is_some())
        .map(|v| v.name.clone())
        .collect()
}

/// A bounded existential check: is there any hole assignment making
/// `pres -> post` hold for all states? Uses a small CEGIS loop.
fn achievable(
    mgr: &mut TermManager,
    holes: &[(owl_smt::SymbolId, u32)],
    pres: &[owl_smt::TermId],
    post: owl_smt::TermId,
    rounds: usize,
) -> Result<Option<Env>, CoreError> {
    let mut candidate = Env::new();
    for (sym, w) in holes {
        candidate.set_var(*sym, BitVec::zero(*w));
    }
    let mut constraints = Vec::new();
    for _ in 0..rounds {
        let mut assertions: Vec<_> =
            pres.iter().map(|&p| substitute(mgr, p, &candidate)).collect();
        let p2 = substitute(mgr, post, &candidate);
        assertions.push(mgr.not(p2));
        match solve(mgr, &assertions, None).result {
            SmtResult::Unsat => return Ok(None), // candidate works
            SmtResult::Unknown(_) => return Err(CoreError::new("diagnosis query returned unknown")),
            SmtResult::Sat(model) => {
                let cex = model.into_env();
                let pres2: Vec<_> = pres.iter().map(|&p| substitute(mgr, p, &cex)).collect();
                let post2 = substitute(mgr, post, &cex);
                let pre_conj = mgr.and_many(&pres2);
                let ob = mgr.implies(pre_conj, post2);
                constraints.push(ob);
                match solve(mgr, &constraints, None).result {
                    SmtResult::Sat(model) => {
                        let mut next = Env::new();
                        for (sym, w) in holes {
                            let v = model
                                .env()
                                .var(*sym)
                                .cloned()
                                .unwrap_or_else(|| BitVec::zero(*w));
                            next.set_var(*sym, v);
                        }
                        candidate = next;
                    }
                    SmtResult::Unsat => return Ok(Some(cex)), // truly impossible
                    SmtResult::Unknown(_) => {
                        return Err(CoreError::new("diagnosis query returned unknown"))
                    }
                }
            }
        }
    }
    // Did not converge; treat the last counterexample as inconclusive
    // evidence of impossibility.
    Ok(Some(Env::new()))
}

/// Renders the interesting parts of a counterexample environment.
fn render_cex(mgr: &TermManager, env: &Env) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut items: Vec<(String, BitVec)> = env
        .vars()
        .map(|(sym, v)| (mgr.symbol_name(sym).to_string(), v.clone()))
        .filter(|(name, _)| !name.starts_with("??") && !name.starts_with("frame_"))
        .collect();
    items.sort();
    for (name, v) in items.into_iter().take(8) {
        parts.push(format!("{name} = {v}"));
    }
    if parts.is_empty() {
        "(no distinguishing assignment recorded)".to_string()
    } else {
        parts.join(", ")
    }
}

/// Diagnoses why `instr_name` cannot be synthesized on `design`.
///
/// # Errors
///
/// Returns an error if the inputs fail validation or the instruction
/// does not exist.
pub fn diagnose(
    mgr: &mut TermManager,
    design: &Design,
    ila: &Ila,
    alpha: &AbstractionFn,
    instr_name: &str,
) -> Result<Diagnosis, CoreError> {
    let instr = ila
        .instr(instr_name)
        .ok_or_else(|| CoreError::new(format!("unknown instruction {instr_name}")))?;
    let trace = SymbolicEvaluator::run(mgr, design, alpha.cycles()).map_err(CoreError::from)?;
    let mut builder = ConditionBuilder::new(ila, alpha, &trace)?;
    builder.share_roms(mgr);
    let conds: InstrConditions = builder.instr_conditions(mgr, instr)?;

    let holes: Vec<(owl_smt::SymbolId, u32)> = design
        .hole_names()
        .into_iter()
        .map(|name| {
            let t = *trace.holes.get(&name).ok_or_else(|| {
                CoreError::new(format!("hole {name} is missing from the symbolic trace"))
            })?;
            let sym = mgr.as_var(t).ok_or_else(|| {
                CoreError::new(format!(
                    "hole {name} is not a free variable in the symbolic trace"
                ))
            })?;
            Ok((sym, mgr.width(t)))
        })
        .collect::<Result<Vec<_>, CoreError>>()?;

    // Dead decode?
    let decode_sat = matches!(solve(mgr, &conds.pres, None).result, SmtResult::Sat(_));

    let names = post_names(ila, alpha);
    let mut obligations = Vec::new();
    for (name, &post) in names.iter().zip(&conds.posts) {
        let status = if !decode_sat {
            ObligationStatus::SatisfiableAlone
        } else {
            match achievable(mgr, &holes, &conds.pres, post, 64)? {
                None => ObligationStatus::SatisfiableAlone,
                Some(cex) => ObligationStatus::Unsatisfiable {
                    counterexample: render_cex(mgr, &cex),
                },
            }
        };
        obligations.push((name.clone(), status));
    }

    Ok(Diagnosis {
        instr: instr_name.to_string(),
        decode_unsatisfiable: !decode_sat,
        obligations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::DatapathKind;
    use owl_ila::{Instr, SpecExpr};

    /// Spec wants acc' = acc * 3, but the datapath can only add `val` or
    /// clear — the pc-like counter, meanwhile, is implementable.
    fn broken_setup() -> (Ila, Design, AbstractionFn) {
        let mut ila = Ila::new("m");
        let go = ila.new_bv_input("go", 1);
        ila.new_bv_input("val", 8);
        let acc = ila.new_bv_state("acc", 8);
        let count = ila.new_bv_state("count", 8);
        let mut i = Instr::new("TRIPLE");
        i.set_decode(go.eq(SpecExpr::const_u64(1, 1)));
        i.set_update("acc", acc.mul(SpecExpr::const_u64(8, 3)));
        i.set_update("count", count.add(SpecExpr::const_u64(8, 1)));
        ila.add_instr(i);

        let d: Design = "design dp\ninput go 1\ninput val 8\n\
                         hole clear 1\nhole en 1\n\
                         register acc 8\nregister count 8\n\
                         acc := if clear then 8'x00 else if en then acc + val else acc\n\
                         count := count + 8'x01\nend\n"
            .parse()
            .unwrap();
        let mut alpha = AbstractionFn::new(1);
        alpha.map_input("go", "go");
        alpha.map_input("val", "val");
        alpha.map("acc", "acc", DatapathKind::Register, [1], [1]);
        alpha.map("count", "count", DatapathKind::Register, [1], [1]);
        (ila, d, alpha)
    }

    #[test]
    fn diagnosis_blames_the_right_state_element() {
        let (ila, d, alpha) = broken_setup();
        let mut mgr = TermManager::new();
        let diag = diagnose(&mut mgr, &d, &ila, &alpha, "TRIPLE").unwrap();
        assert!(!diag.decode_unsatisfiable);
        assert_eq!(diag.blamed_state(), vec!["acc"]);
        let text = diag.to_string();
        assert!(text.contains("acc: NO control logic"));
        assert!(text.contains("count: satisfiable in isolation"));
    }

    #[test]
    fn dead_decode_detected() {
        let mut ila = Ila::new("dead");
        let go = ila.new_bv_input("go", 1);
        ila.new_bv_state("acc", 8);
        let mut i = Instr::new("NEVER");
        // go == 1 && go == 0 is unsatisfiable.
        i.set_decode(
            go.clone()
                .eq(SpecExpr::const_u64(1, 1))
                .and(go.eq(SpecExpr::const_u64(1, 0))),
        );
        i.set_update("acc", SpecExpr::const_u64(8, 1));
        ila.add_instr(i);
        let d: Design = "design dp\ninput go 1\nregister acc 8\nhole h 1\n\
                         acc := if h then acc else acc\nend\n"
            .parse()
            .unwrap();
        let mut alpha = AbstractionFn::new(1);
        alpha.map_input("go", "go");
        alpha.map("acc", "acc", DatapathKind::Register, [1], [1]);
        let mut mgr = TermManager::new();
        let diag = diagnose(&mut mgr, &d, &ila, &alpha, "NEVER").unwrap();
        assert!(diag.decode_unsatisfiable);
    }

    #[test]
    fn healthy_instruction_has_no_blame() {
        let (_, d, alpha) = broken_setup();
        let mut ila = Ila::new("ok");
        let go = ila.new_bv_input("go", 1);
        let val = ila.new_bv_input("val", 8);
        let acc = ila.new_bv_state("acc", 8);
        let count = ila.new_bv_state("count", 8);
        let mut i = Instr::new("ACCUM");
        i.set_decode(go.eq(SpecExpr::const_u64(1, 1)));
        i.set_update("acc", acc.add(val));
        i.set_update("count", count.add(SpecExpr::const_u64(8, 1)));
        ila.add_instr(i);
        let mut mgr = TermManager::new();
        let diag = diagnose(&mut mgr, &d, &ila, &alpha, "ACCUM").unwrap();
        assert!(diag.blamed_state().is_empty(), "{diag}");
    }
}
