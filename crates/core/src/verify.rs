//! Independent bounded verification of a completed design against its
//! specification.
//!
//! This is the "trust but check" pass: after synthesis and the control
//! union, the completed (hole-free) design is re-evaluated symbolically
//! from scratch and every instruction's `pre -> post` obligation is
//! checked as a plain validity query. It shares no state with the CEGIS
//! loop, so a bug in the synthesizer cannot vouch for itself.

use crate::abstraction::AbstractionFn;
use crate::conditions::ConditionBuilder;
use crate::CoreError;
use owl_ila::Ila;
use owl_oyster::{Design, SymbolicEvaluator};
use owl_smt::{solve, Budget, CheckOpts, SmtResult, SolverConfig, TermManager};
use std::time::{Duration, Instant};

/// Options for one [`verify_design`] pass: the resource [`Budget`] plus
/// the per-query [`SolverConfig`].
///
/// Anything historical converts into it — `None`, `Some(conflicts)`, a
/// [`Budget`] (owned or by reference) — so existing call sites read
/// unchanged: `verify_design(&mut mgr, &d, &ila, &alpha, None)`.
#[derive(Debug, Clone, Default)]
pub struct VerifyOpts {
    /// Resource envelope shared by all verification queries.
    pub budget: Budget,
    /// Per-query solver configuration (simplification, certification).
    pub config: SolverConfig,
}

impl VerifyOpts {
    /// Unlimited budget, default configuration.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the resource budget.
    #[must_use]
    pub fn with_budget(mut self, budget: impl Into<Budget>) -> Self {
        self.budget = budget.into();
        self
    }

    /// Replaces the whole solver configuration.
    #[must_use]
    pub fn with_config(mut self, config: SolverConfig) -> Self {
        self.config = config;
        self
    }

    /// Toggles equality-saturation simplification of each query.
    #[must_use]
    pub fn simplified(mut self, simplify: bool) -> Self {
        self.config.simplify = simplify;
        self
    }
}

impl From<Option<u64>> for VerifyOpts {
    fn from(conflicts: Option<u64>) -> Self {
        VerifyOpts::new().with_budget(conflicts)
    }
}

impl From<Budget> for VerifyOpts {
    fn from(budget: Budget) -> Self {
        VerifyOpts::new().with_budget(budget)
    }
}

impl From<&Budget> for VerifyOpts {
    fn from(budget: &Budget) -> Self {
        VerifyOpts::new().with_budget(budget)
    }
}

/// Aggregate query statistics from one verification pass.
///
/// Unlike the CEGIS loop, verification runs a fixed, deterministic set
/// of queries (one per instruction, determined entirely by the design
/// and the spec), so two passes over the same design with different
/// [`SolverConfig`]s are directly comparable — this is how the benches
/// measure what eqsat simplification buys on real queries.
#[derive(Debug, Clone, Copy, Default)]
pub struct VerifyStats {
    /// Instructions verified.
    pub instructions: usize,
    /// Term-graph nodes across all queries before simplification.
    pub terms_before: usize,
    /// Term-graph nodes after simplification (equal to `terms_before`
    /// when [`SolverConfig::simplify`] is off).
    pub terms_after: usize,
    /// CNF variables created by bit-blasting, summed over all queries.
    pub cnf_vars: usize,
    /// CNF clauses, summed over all queries.
    pub cnf_clauses: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl owl_trace::Report for VerifyStats {
    fn report(&self) -> owl_trace::Section {
        owl_trace::Section::new()
            .with("instructions", self.instructions)
            .with("terms_before", self.terms_before)
            .with("terms_after", self.terms_after)
            .with("cnf_vars", self.cnf_vars)
            .with("cnf_clauses", self.cnf_clauses)
            .with("elapsed_secs", self.elapsed.as_secs_f64())
    }
}

/// Verifies that `design` (which must be hole-free) satisfies every
/// instruction of `ila` under `alpha`.
///
/// `opts` is anything that converts into [`VerifyOpts`]: pass `None` for
/// unlimited, a bare `Some(conflicts)` for the historical conflict
/// budget, a full [`Budget`] (deadline, cancellation flag, work limits)
/// by reference, or an explicit `VerifyOpts` to also pick the
/// [`SolverConfig`]. The budget is re-checked between instructions and
/// inside each query. Aggregate per-query statistics are returned on
/// success.
///
/// # Errors
///
/// Returns an error naming the first violated instruction, or a typed
/// resource error ([`CoreError::Timeout`], [`CoreError::Cancelled`],
/// [`CoreError::SolverExhausted`]) when the budget runs out.
pub fn verify_design(
    mgr: &mut TermManager,
    design: &Design,
    ila: &Ila,
    alpha: &AbstractionFn,
    opts: impl Into<VerifyOpts>,
) -> Result<VerifyStats, CoreError> {
    let opts = opts.into();
    verify_impl(mgr, design, ila, alpha, &opts.budget, &opts.config)
}

fn verify_impl(
    mgr: &mut TermManager,
    design: &Design,
    ila: &Ila,
    alpha: &AbstractionFn,
    budget: &Budget,
    config: &SolverConfig,
) -> Result<VerifyStats, CoreError> {
    let start = Instant::now();
    if !design.hole_names().is_empty() {
        return Err(CoreError::new(format!(
            "design still has holes: {:?}",
            design.hole_names()
        )));
    }
    let trace = SymbolicEvaluator::run(mgr, design, alpha.cycles()).map_err(CoreError::from)?;
    let mut builder = ConditionBuilder::new(ila, alpha, &trace)?;
    builder.share_roms(mgr);
    let mut stats = VerifyStats::default();
    let opts = CheckOpts::new().with_budget(budget).with_config(config.clone());
    for instr in ila.instrs() {
        if let Some(reason) = budget.checkpoint() {
            return Err(CoreError::from_stop(reason, instr.name(), start.elapsed()));
        }
        let conds = builder.instr_conditions(mgr, instr)?;
        let mut assertions = conds.pres.clone();
        let post = mgr.and_many(&conds.posts);
        assertions.push(mgr.not(post));
        let outcome = solve(mgr, &assertions, opts.clone());
        stats.instructions += 1;
        stats.terms_before += outcome.stats.terms_before;
        stats.terms_after += outcome.stats.terms_after;
        stats.cnf_vars += outcome.stats.cnf_vars;
        stats.cnf_clauses += outcome.stats.cnf_clauses;
        match outcome.result {
            SmtResult::Unsat => {}
            SmtResult::Sat(_) => {
                return Err(CoreError::new(format!(
                    "instruction {} violates its specification",
                    instr.name()
                )));
            }
            SmtResult::Unknown(reason) => {
                return Err(CoreError::from_stop(reason, instr.name(), start.elapsed()));
            }
        }
    }
    stats.elapsed = start.elapsed();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::DatapathKind;
    use owl_ila::{Instr, SpecExpr};

    fn spec() -> (Ila, AbstractionFn) {
        let mut ila = Ila::new("inc");
        let go = ila.new_bv_input("go", 1);
        let acc = ila.new_bv_state("acc", 8);
        let mut i = Instr::new("INC");
        i.set_decode(go.eq(SpecExpr::const_u64(1, 1)));
        i.set_update("acc", acc.add(SpecExpr::const_u64(8, 1)));
        ila.add_instr(i);
        let mut alpha = AbstractionFn::new(1);
        alpha.map_input("go", "go");
        alpha.map("acc", "acc", DatapathKind::Register, [1], [1]);
        (ila, alpha)
    }

    #[test]
    fn correct_design_verifies() {
        let (ila, alpha) = spec();
        let d: Design = "design good\ninput go 1\nregister acc 8\n\
                         acc := if go then acc + 8'x01 else acc\nend\n"
            .parse()
            .unwrap();
        let mut mgr = TermManager::new();
        assert!(verify_design(&mut mgr, &d, &ila, &alpha, None).is_ok());
    }

    #[test]
    fn wrong_design_rejected() {
        let (ila, alpha) = spec();
        // Adds 2 instead of 1.
        let d: Design = "design bad\ninput go 1\nregister acc 8\n\
                         acc := if go then acc + 8'x02 else acc\nend\n"
            .parse()
            .unwrap();
        let mut mgr = TermManager::new();
        let err = verify_design(&mut mgr, &d, &ila, &alpha, None).unwrap_err();
        assert!(err.to_string().contains("INC"));
    }

    #[test]
    fn sketches_with_holes_rejected() {
        let (ila, alpha) = spec();
        let d: Design = "design h\ninput go 1\nhole en 1\nregister acc 8\n\
                         acc := if en then acc + 8'x01 else acc\nend\n"
            .parse()
            .unwrap();
        let mut mgr = TermManager::new();
        assert!(verify_design(&mut mgr, &d, &ila, &alpha, None).is_err());
    }
}
