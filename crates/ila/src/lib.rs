//! Instruction-Level Abstraction (ILA) specifications.
//!
//! ILA "provides a mechanism to functionally specify the hardware-software
//! interface for both processors and accelerators" (paper §2.1): a model
//! declares inputs and architectural state, and a set of *instructions*,
//! each with a `decode` condition (when the instruction fires) and
//! `update` functions (how it changes state). This crate mirrors the ILA
//! C++ library's authoring surface in Rust:
//!
//! ```
//! use owl_ila::{Ila, Instr, SpecExpr};
//!
//! let mut ila = Ila::new("alu_ila");
//! let op = ila.new_bv_input("op", 2);
//! let dest = ila.new_bv_input("dest", 2);
//! let src1 = ila.new_bv_input("src1", 2);
//! let src2 = ila.new_bv_input("src2", 2);
//! ila.new_mem_state("regs", 2, 8);
//!
//! let rs1 = SpecExpr::load("regs", src1.clone());
//! let rs2 = SpecExpr::load("regs", src2.clone());
//!
//! let mut add = Instr::new("ADD");
//! add.set_decode(op.eq(SpecExpr::const_u64(2, 1)));
//! add.set_store("regs", dest, rs1.add(rs2));
//! ila.add_instr(add);
//! ila.check()?;
//! # Ok::<(), owl_ila::IlaError>(())
//! ```
//!
//! Two consumers exist:
//!
//! - [`compile`] lowers decode and update expressions to `owl_smt` terms
//!   through a [`compile::SpecResolver`] — the paper's Fig. 8 translation,
//!   where state reads route through the abstraction function; and
//! - [`golden`] evaluates the specification concretely, giving an
//!   ISA-level golden model for differential testing of synthesized
//!   hardware.

pub mod compile;
mod expr;
pub mod golden;
mod model;

pub use expr::{BinOp, SpecExpr};
pub use model::{Ila, IlaError, Instr, MemUpdate, SpecSort, StateVar};
