//! The ILA model structure: inputs, state variables, lookup tables and
//! instructions, with a type/width checker.

use crate::expr::SpecExpr;
use owl_bitvec::BitVec;
use std::collections::HashMap;
use std::fmt;

/// The sort of an ILA input or state variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecSort {
    /// A bitvector of the given width.
    Bv(u32),
    /// A memory with the given address and data widths.
    Mem {
        /// Address width in bits.
        addr_width: u32,
        /// Data width in bits.
        data_width: u32,
    },
}

/// An ILA input or state variable declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateVar {
    /// Variable name.
    pub name: String,
    /// Variable sort.
    pub sort: SpecSort,
    /// True for inputs, false for architectural state.
    pub is_input: bool,
}

/// A (possibly conditional) store to a memory state, from
/// `SetUpdate(mem, Store(mem, addr, data))`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemUpdate {
    /// Address stored to.
    pub addr: SpecExpr,
    /// Data stored.
    pub data: SpecExpr,
    /// Optional store condition; `None` stores unconditionally. When the
    /// condition is false the memory is unchanged at that address.
    pub cond: Option<SpecExpr>,
}

/// One ILA instruction: a decode condition plus state updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instr {
    name: String,
    decode: Option<SpecExpr>,
    bv_updates: Vec<(String, SpecExpr)>,
    mem_updates: Vec<(String, MemUpdate)>,
}

impl Instr {
    /// Creates an instruction with the given mnemonic.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Instr { name: name.into(), decode: None, bv_updates: Vec::new(), mem_updates: Vec::new() }
    }

    /// The instruction's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the decode condition (ILA `SetDecode`).
    pub fn set_decode(&mut self, cond: SpecExpr) -> &mut Self {
        self.decode = Some(cond);
        self
    }

    /// The decode condition.
    ///
    /// # Errors
    ///
    /// Returns an error if the decode was never set. [`Ila::check`]
    /// rejects such models up front, so callers that validated the model
    /// only see the `Ok` arm — but specs arrive from users, so the
    /// accessor reports rather than panics.
    pub fn decode(&self) -> Result<&SpecExpr, IlaError> {
        self.decode
            .as_ref()
            .ok_or_else(|| IlaError::new(format!("instruction {} has no decode condition", self.name)))
    }

    /// Sets a bitvector state update (ILA `SetUpdate(state, expr)`).
    pub fn set_update(&mut self, state: impl Into<String>, value: SpecExpr) -> &mut Self {
        self.bv_updates.push((state.into(), value));
        self
    }

    /// Sets an unconditional memory store
    /// (ILA `SetUpdate(mem, Store(mem, addr, data))`).
    pub fn set_store(&mut self, mem: impl Into<String>, addr: SpecExpr, data: SpecExpr) -> &mut Self {
        self.mem_updates.push((mem.into(), MemUpdate { addr, data, cond: None }));
        self
    }

    /// Sets a conditional memory store
    /// (ILA `SetUpdate(mem, Ite(cond, Store(mem, addr, data), mem))`).
    pub fn set_store_when(
        &mut self,
        mem: impl Into<String>,
        addr: SpecExpr,
        data: SpecExpr,
        cond: SpecExpr,
    ) -> &mut Self {
        self.mem_updates.push((mem.into(), MemUpdate { addr, data, cond: Some(cond) }));
        self
    }

    /// Bitvector state updates, in insertion order.
    #[must_use]
    pub fn bv_updates(&self) -> &[(String, SpecExpr)] {
        &self.bv_updates
    }

    /// Memory state updates, in insertion order.
    #[must_use]
    pub fn mem_updates(&self) -> &[(String, MemUpdate)] {
        &self.mem_updates
    }
}

/// Error produced by ILA validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IlaError {
    message: String,
}

impl IlaError {
    /// Creates an error with the given message. Public so that
    /// [`crate::compile::SpecResolver`] implementations in other crates
    /// can report resolution failures.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        IlaError { message: message.into() }
    }
}

impl fmt::Display for IlaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ila error: {}", self.message)
    }
}

impl std::error::Error for IlaError {}

/// An ILA model: declarations plus instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ila {
    name: String,
    vars: Vec<StateVar>,
    tables: Vec<(String, u32, u32, Vec<BitVec>)>,
    instrs: Vec<Instr>,
}

impl Ila {
    /// Creates an empty model with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Ila { name: name.into(), vars: Vec::new(), tables: Vec::new(), instrs: Vec::new() }
    }

    /// The model's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares a bitvector input (ILA `NewBvInput`); returns a reference
    /// expression.
    pub fn new_bv_input(&mut self, name: impl Into<String>, width: u32) -> SpecExpr {
        let name = name.into();
        self.vars.push(StateVar { name: name.clone(), sort: SpecSort::Bv(width), is_input: true });
        SpecExpr::var(name)
    }

    /// Declares a bitvector state variable (ILA `NewBvState`); returns a
    /// reference expression.
    pub fn new_bv_state(&mut self, name: impl Into<String>, width: u32) -> SpecExpr {
        let name = name.into();
        self.vars.push(StateVar { name: name.clone(), sort: SpecSort::Bv(width), is_input: false });
        SpecExpr::var(name)
    }

    /// Declares a memory state variable (ILA `NewMemState`); loads are
    /// written `SpecExpr::load(name, addr)`.
    pub fn new_mem_state(&mut self, name: impl Into<String>, addr_width: u32, data_width: u32) {
        self.vars.push(StateVar {
            name: name.into(),
            sort: SpecSort::Mem { addr_width, data_width },
            is_input: false,
        });
    }

    /// Declares a constant lookup table (ILA `MemConst`); loads are
    /// written `SpecExpr::load_const(name, addr)`.
    pub fn new_mem_const(
        &mut self,
        name: impl Into<String>,
        addr_width: u32,
        data_width: u32,
        data: Vec<BitVec>,
    ) {
        self.tables.push((name.into(), addr_width, data_width, data));
    }

    /// Adds an instruction (ILA `NewInstr` + its decode/update setup).
    pub fn add_instr(&mut self, instr: Instr) -> &mut Self {
        self.instrs.push(instr);
        self
    }

    /// The instructions, in declaration order.
    #[must_use]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// The inputs and state variables, in declaration order.
    #[must_use]
    pub fn vars(&self) -> &[StateVar] {
        &self.vars
    }

    /// The lookup tables: `(name, addr_width, data_width, contents)`.
    #[must_use]
    pub fn tables(&self) -> &[(String, u32, u32, Vec<BitVec>)] {
        &self.tables
    }

    /// Looks up a variable by name.
    #[must_use]
    pub fn var(&self, name: &str) -> Option<&StateVar> {
        self.vars.iter().find(|v| v.name == name)
    }

    /// Looks up an instruction by name.
    #[must_use]
    pub fn instr(&self, name: &str) -> Option<&Instr> {
        self.instrs.iter().find(|i| i.name() == name)
    }

    /// Looks up a table by name.
    #[must_use]
    pub fn table(&self, name: &str) -> Option<&(String, u32, u32, Vec<BitVec>)> {
        self.tables.iter().find(|t| t.0 == name)
    }

    /// Infers the width of a specification expression in this model.
    ///
    /// # Errors
    ///
    /// Returns an error if a reference does not resolve or widths are
    /// inconsistent.
    pub fn expr_width(&self, expr: &SpecExpr) -> Result<u32, IlaError> {
        match expr {
            SpecExpr::Ref(n) => match self.var(n).map(|v| &v.sort) {
                Some(SpecSort::Bv(w)) => Ok(*w),
                Some(SpecSort::Mem { .. }) => {
                    Err(IlaError::new(format!("{n} is a memory; use Load")))
                }
                None => Err(IlaError::new(format!("unknown variable {n}"))),
            },
            SpecExpr::Const(c) => Ok(c.width()),
            SpecExpr::Not(a) => self.expr_width(a),
            SpecExpr::Binop(op, a, b) => {
                let x = self.expr_width(a)?;
                let y = self.expr_width(b)?;
                if x != y {
                    return Err(IlaError::new(format!("operator width mismatch: {x} vs {y}")));
                }
                Ok(if op.is_predicate() { 1 } else { x })
            }
            SpecExpr::Ite(c, t, e) => {
                let _ = self.expr_width(c)?;
                let x = self.expr_width(t)?;
                let y = self.expr_width(e)?;
                if x != y {
                    return Err(IlaError::new(format!("ite branches differ: {x} vs {y}")));
                }
                Ok(x)
            }
            SpecExpr::Extract(a, high, low) => {
                let w = self.expr_width(a)?;
                if high < low || *high >= w {
                    return Err(IlaError::new(format!(
                        "extract [{high}:{low}] out of range for width {w}"
                    )));
                }
                Ok(high - low + 1)
            }
            SpecExpr::Concat(a, b) => Ok(self.expr_width(a)? + self.expr_width(b)?),
            SpecExpr::ZExt(a, w) | SpecExpr::SExt(a, w) => {
                let x = self.expr_width(a)?;
                if *w < x {
                    return Err(IlaError::new(format!("extension to {w} below width {x}")));
                }
                Ok(*w)
            }
            SpecExpr::Load(mem, addr) => {
                let Some(StateVar { sort: SpecSort::Mem { addr_width, data_width }, .. }) =
                    self.var(mem)
                else {
                    return Err(IlaError::new(format!("unknown memory state {mem}")));
                };
                let a = self.expr_width(addr)?;
                if a != *addr_width {
                    return Err(IlaError::new(format!(
                        "load from {mem}: address width {a}, expected {addr_width}"
                    )));
                }
                Ok(*data_width)
            }
            SpecExpr::LoadConst(table, addr) => {
                let Some((_, addr_width, data_width, _)) = self.table(table) else {
                    return Err(IlaError::new(format!("unknown table {table}")));
                };
                let a = self.expr_width(addr)?;
                if a != *addr_width {
                    return Err(IlaError::new(format!(
                        "load from table {table}: address width {a}, expected {addr_width}"
                    )));
                }
                Ok(*data_width)
            }
        }
    }

    /// Validates the model: every instruction has a decode, every update
    /// targets a declared state variable with matching widths, and every
    /// expression is well-typed.
    ///
    /// # Errors
    ///
    /// Returns an error describing the first problem found.
    pub fn check(&self) -> Result<(), IlaError> {
        let mut names: HashMap<&str, ()> = HashMap::new();
        for v in &self.vars {
            if names.insert(v.name.as_str(), ()).is_some() {
                return Err(IlaError::new(format!("duplicate variable {}", v.name)));
            }
        }
        for (t, _, dw, data) in &self.tables {
            if names.insert(t.as_str(), ()).is_some() {
                return Err(IlaError::new(format!("duplicate table {t}")));
            }
            if let Some(bad) = data.iter().find(|v| v.width() != *dw) {
                return Err(IlaError::new(format!("table {t} entry {bad} width != {dw}")));
            }
        }
        for instr in &self.instrs {
            let Some(decode) = &instr.decode else {
                return Err(IlaError::new(format!("instruction {} has no decode", instr.name)));
            };
            let ctx = |e: IlaError| {
                IlaError::new(format!("instruction {}: {}", instr.name, e.message))
            };
            let _ = self.expr_width(decode).map_err(ctx)?;
            for (state, value) in &instr.bv_updates {
                let Some(StateVar { sort: SpecSort::Bv(w), is_input: false, .. }) =
                    self.var(state)
                else {
                    return Err(IlaError::new(format!(
                        "instruction {}: update target {state} is not a bitvector state",
                        instr.name
                    )));
                };
                let vw = self.expr_width(value).map_err(ctx)?;
                if vw != *w {
                    return Err(IlaError::new(format!(
                        "instruction {}: update of {state} has width {vw}, expected {w}",
                        instr.name
                    )));
                }
            }
            for (mem, update) in &instr.mem_updates {
                let Some(StateVar {
                    sort: SpecSort::Mem { addr_width, data_width },
                    is_input: false,
                    ..
                }) = self.var(mem)
                else {
                    return Err(IlaError::new(format!(
                        "instruction {}: store target {mem} is not a memory state",
                        instr.name
                    )));
                };
                let aw = self.expr_width(&update.addr).map_err(ctx)?;
                let dw = self.expr_width(&update.data).map_err(ctx)?;
                if aw != *addr_width || dw != *data_width {
                    return Err(IlaError::new(format!(
                        "instruction {}: store to {mem} widths ({aw}, {dw}) expected ({addr_width}, {data_width})",
                        instr.name
                    )));
                }
                if let Some(c) = &update.cond {
                    let _ = self.expr_width(c).map_err(ctx)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alu_ila() -> Ila {
        let mut ila = Ila::new("alu_ila");
        let op = ila.new_bv_input("op", 2);
        let dest = ila.new_bv_input("dest", 2);
        let src1 = ila.new_bv_input("src1", 2);
        let src2 = ila.new_bv_input("src2", 2);
        ila.new_mem_state("regs", 2, 8);
        let rs1 = SpecExpr::load("regs", src1);
        let rs2 = SpecExpr::load("regs", src2);
        let mut add = Instr::new("ADD");
        add.set_decode(op.clone().eq(SpecExpr::const_u64(2, 1)));
        add.set_store("regs", dest.clone(), rs1.clone().add(rs2.clone()));
        ila.add_instr(add);
        let mut xor = Instr::new("XOR");
        xor.set_decode(op.eq(SpecExpr::const_u64(2, 2)));
        xor.set_store("regs", dest, rs1.xor(rs2));
        ila.add_instr(xor);
        ila
    }

    #[test]
    fn alu_model_checks() {
        assert!(alu_ila().check().is_ok());
        assert_eq!(alu_ila().instrs().len(), 2);
    }

    #[test]
    fn missing_decode_rejected() {
        let mut ila = alu_ila();
        ila.add_instr(Instr::new("NOP"));
        let err = ila.check().unwrap_err();
        assert!(err.to_string().contains("no decode"));
    }

    #[test]
    fn decode_accessor_reports_instead_of_panicking() {
        let nop = Instr::new("NOP");
        let err = nop.decode().unwrap_err();
        assert!(err.to_string().contains("NOP"));
        let mut set = Instr::new("I");
        set.set_decode(SpecExpr::const_u64(1, 1));
        assert!(set.decode().is_ok());
    }

    #[test]
    fn update_width_mismatch_rejected() {
        let mut ila = Ila::new("bad");
        ila.new_bv_state("acc", 8);
        let mut i = Instr::new("I");
        i.set_decode(SpecExpr::const_u64(1, 1));
        i.set_update("acc", SpecExpr::const_u64(4, 0));
        ila.add_instr(i);
        assert!(ila.check().is_err());
    }

    #[test]
    fn update_of_input_rejected() {
        let mut ila = Ila::new("bad");
        ila.new_bv_input("x", 8);
        let mut i = Instr::new("I");
        i.set_decode(SpecExpr::const_u64(1, 1));
        i.set_update("x", SpecExpr::const_u64(8, 0));
        ila.add_instr(i);
        assert!(ila.check().is_err());
    }

    #[test]
    fn expr_width_inference() {
        let ila = alu_ila();
        let w = ila
            .expr_width(&SpecExpr::load("regs", SpecExpr::var("src1")))
            .unwrap();
        assert_eq!(w, 8);
        assert!(ila.expr_width(&SpecExpr::var("nonexistent")).is_err());
        assert!(ila.expr_width(&SpecExpr::var("regs")).is_err());
    }

    #[test]
    fn mem_const_checked() {
        let mut ila = Ila::new("t");
        ila.new_bv_input("a", 2);
        ila.new_mem_const("tab", 2, 8, vec![BitVec::zero(8); 4]);
        ila.new_bv_state("out", 8);
        let mut i = Instr::new("LOOKUP");
        i.set_decode(SpecExpr::const_u64(1, 1));
        i.set_update("out", SpecExpr::load_const("tab", SpecExpr::var("a")));
        ila.add_instr(i);
        assert!(ila.check().is_ok());
    }

    #[test]
    fn conditional_store_checked() {
        let mut ila = Ila::new("c");
        let rd = ila.new_bv_input("rd", 2);
        ila.new_mem_state("regs", 2, 8);
        let mut i = Instr::new("W");
        i.set_decode(SpecExpr::const_u64(1, 1));
        i.set_store_when(
            "regs",
            rd.clone(),
            SpecExpr::const_u64(8, 7),
            rd.neq(SpecExpr::const_u64(2, 0)),
        );
        ila.add_instr(i);
        assert!(ila.check().is_ok());
    }
}
