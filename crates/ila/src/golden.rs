//! Concrete evaluation of ILA specifications: an ISA-level golden model.
//!
//! Running the specification directly over a concrete architectural state
//! gives a reference trace to compare the synthesized hardware against —
//! the differential-testing half of our validation (the paper relies on
//! the synthesis guarantee plus simulation of SHA-256; we additionally
//! replay random instruction streams through both spec and hardware).

use crate::expr::{BinOp, SpecExpr};
use crate::model::{Ila, IlaError, SpecSort};
use owl_bitvec::BitVec;
use std::collections::HashMap;

/// Concrete contents of an architectural memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecMem {
    map: HashMap<u64, BitVec>,
    default: BitVec,
}

impl SpecMem {
    /// A memory reading `default` everywhere.
    #[must_use]
    pub fn filled(default: BitVec) -> Self {
        SpecMem { map: HashMap::new(), default }
    }

    /// Reads the word at `addr`.
    #[must_use]
    pub fn read(&self, addr: u64) -> BitVec {
        self.map.get(&addr).cloned().unwrap_or_else(|| self.default.clone())
    }

    /// Writes `data` at `addr`.
    pub fn write(&mut self, addr: u64, data: BitVec) {
        self.map.insert(addr, data);
    }
}

/// A concrete architectural state: inputs, bitvector state, memory state.
#[derive(Debug, Clone, Default)]
pub struct SpecState {
    /// Current input values.
    pub inputs: HashMap<String, BitVec>,
    /// Bitvector state variables.
    pub bvs: HashMap<String, BitVec>,
    /// Memory state variables.
    pub mems: HashMap<String, SpecMem>,
}

impl SpecState {
    /// Initializes all declared state variables of `ila` to zero.
    #[must_use]
    pub fn zeroed(ila: &Ila) -> Self {
        let mut state = SpecState::default();
        for v in ila.vars() {
            if v.is_input {
                continue;
            }
            match &v.sort {
                SpecSort::Bv(w) => {
                    state.bvs.insert(v.name.clone(), BitVec::zero(*w));
                }
                SpecSort::Mem { data_width, .. } => {
                    state
                        .mems
                        .insert(v.name.clone(), SpecMem::filled(BitVec::zero(*data_width)));
                }
            }
        }
        state
    }
}

/// The golden-model evaluator for an ILA specification.
#[derive(Debug)]
pub struct GoldenModel<'a> {
    ila: &'a Ila,
}

impl<'a> GoldenModel<'a> {
    /// Creates a golden model for a checked specification.
    ///
    /// # Errors
    ///
    /// Returns an error if the specification fails [`Ila::check`].
    pub fn new(ila: &'a Ila) -> Result<Self, IlaError> {
        ila.check()?;
        Ok(GoldenModel { ila })
    }

    /// Evaluates one expression under `state`.
    ///
    /// # Errors
    ///
    /// Returns an error for unbound references.
    pub fn eval(&self, expr: &SpecExpr, state: &SpecState) -> Result<BitVec, IlaError> {
        Ok(match expr {
            SpecExpr::Ref(n) => {
                if let Some(v) = state.inputs.get(n) {
                    v.clone()
                } else if let Some(v) = state.bvs.get(n) {
                    v.clone()
                } else {
                    return Err(IlaError::new(format!("unbound reference {n}")));
                }
            }
            SpecExpr::Const(c) => c.clone(),
            SpecExpr::Not(a) => self.eval(a, state)?.not(),
            SpecExpr::Binop(op, a, b) => {
                let x = self.eval(a, state)?;
                let y = self.eval(b, state)?;
                match op {
                    BinOp::And => x.and(&y),
                    BinOp::Or => x.or(&y),
                    BinOp::Xor => x.xor(&y),
                    BinOp::Add => x.add(&y),
                    BinOp::Sub => x.sub(&y),
                    BinOp::Mul => x.mul(&y),
                    BinOp::Shl => x.shl(&y),
                    BinOp::Lshr => x.lshr(&y),
                    BinOp::Ashr => x.ashr(&y),
                    BinOp::Eq => BitVec::from_bool(x == y),
                    BinOp::Neq => BitVec::from_bool(x != y),
                    BinOp::Ult => BitVec::from_bool(x.ult(&y)),
                    BinOp::Ule => BitVec::from_bool(x.ule(&y)),
                    BinOp::Slt => BitVec::from_bool(x.slt(&y)),
                    BinOp::Sle => BitVec::from_bool(x.sle(&y)),
                }
            }
            SpecExpr::Ite(c, t, e) => {
                if self.eval(c, state)?.is_true() {
                    self.eval(t, state)?
                } else {
                    self.eval(e, state)?
                }
            }
            SpecExpr::Extract(a, high, low) => self.eval(a, state)?.extract(*high, *low),
            SpecExpr::Concat(a, b) => {
                let h = self.eval(a, state)?;
                let l = self.eval(b, state)?;
                h.concat(&l)
            }
            SpecExpr::ZExt(a, w) => self.eval(a, state)?.zext(*w),
            SpecExpr::SExt(a, w) => self.eval(a, state)?.sext(*w),
            SpecExpr::Load(mem, addr) => {
                let a = self.eval(addr, state)?;
                let m = state
                    .mems
                    .get(mem)
                    .ok_or_else(|| IlaError::new(format!("unbound memory {mem}")))?;
                let addr = a.to_u64().ok_or_else(|| {
                    IlaError::new(format!(
                        "load from {mem}: address value exceeds 64 bits (width {})",
                        a.width()
                    ))
                })?;
                m.read(addr)
            }
            SpecExpr::LoadConst(table, addr) => {
                let a = self.eval(addr, state)?;
                let (_, _, dw, data) = self
                    .ila
                    .table(table)
                    .ok_or_else(|| IlaError::new(format!("unknown table {table}")))?;
                let idx = a.to_u64().ok_or_else(|| {
                    IlaError::new(format!(
                        "lookup in table {table}: index value exceeds 64 bits (width {})",
                        a.width()
                    ))
                })? as usize;
                data.get(idx).cloned().unwrap_or_else(|| BitVec::zero(*dw))
            }
        })
    }

    /// The name of the instruction whose decode condition holds, if any.
    ///
    /// # Errors
    ///
    /// Returns an error if more than one decode fires (the specification
    /// violates the mutually-exclusive-preconditions assumption) or
    /// evaluation fails.
    pub fn decode(&self, state: &SpecState) -> Result<Option<String>, IlaError> {
        let mut fired = None;
        for instr in self.ila.instrs() {
            if self.eval(instr.decode()?, state)?.is_true() {
                if let Some(prev) = &fired {
                    return Err(IlaError::new(format!(
                        "instructions {prev} and {} both decode — preconditions not mutually exclusive",
                        instr.name()
                    )));
                }
                fired = Some(instr.name().to_string());
            }
        }
        Ok(fired)
    }

    /// Executes one architectural step: decodes, applies the fired
    /// instruction's updates (all reads see the pre-state), and returns
    /// the instruction name (or `None` if nothing decoded).
    ///
    /// # Errors
    ///
    /// Propagates decode and evaluation errors.
    pub fn step(&self, state: &mut SpecState) -> Result<Option<String>, IlaError> {
        let Some(name) = self.decode(state)? else {
            return Ok(None);
        };
        let instr = self
            .ila
            .instr(&name)
            .ok_or_else(|| IlaError::new(format!("decoded instruction {name} not found in model")))?;
        // Evaluate all updates against the pre-state first.
        let mut bv_new = Vec::new();
        for (sname, value) in instr.bv_updates() {
            bv_new.push((sname.clone(), self.eval(value, state)?));
        }
        let mut mem_new: Vec<(String, u64, BitVec)> = Vec::new();
        for (mname, update) in instr.mem_updates() {
            let enabled = match &update.cond {
                Some(c) => self.eval(c, state)?.is_true(),
                None => true,
            };
            if enabled {
                let a = self.eval(&update.addr, state)?;
                let d = self.eval(&update.data, state)?;
                let addr = a.to_u64().ok_or_else(|| {
                    IlaError::new(format!(
                        "store to {mname}: address value exceeds 64 bits (width {})",
                        a.width()
                    ))
                })?;
                mem_new.push((mname.clone(), addr, d));
            }
        }
        for (sname, v) in bv_new {
            state.bvs.insert(sname, v);
        }
        for (mname, a, d) in mem_new {
            state
                .mems
                .get_mut(&mname)
                .ok_or_else(|| IlaError::new(format!("store to undeclared memory {mname}")))?
                .write(a, d);
        }
        Ok(Some(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Instr;

    fn acc_ila() -> Ila {
        // The paper's Section 2.3 accumulator machine.
        let mut ila = Ila::new("acc_ila");
        let reset = ila.new_bv_input("reset", 1);
        let go = ila.new_bv_input("go", 1);
        let stop = ila.new_bv_input("stop", 1);
        let val = ila.new_bv_input("val", 2);
        let acc = ila.new_bv_state("acc", 8);
        let state = ila.new_bv_state("state", 2);
        // States: RESET=0, GO=1, STOP=2.
        let reset_c = SpecExpr::const_u64(2, 0);
        let go_c = SpecExpr::const_u64(2, 1);
        let stop_c = SpecExpr::const_u64(2, 2);

        let mut r = Instr::new("reset_instr");
        r.set_decode(state.clone().eq(stop_c.clone()).and(reset.eq(SpecExpr::const_u64(1, 1))));
        r.set_update("acc", SpecExpr::const_u64(8, 0));
        r.set_update("state", reset_c.clone());
        ila.add_instr(r);

        let mut g = Instr::new("go_instr");
        let from_reset = state.clone().eq(reset_c).and(go.eq(SpecExpr::const_u64(1, 1)));
        let continuing = state
            .clone()
            .eq(go_c.clone())
            .and(stop.clone().eq(SpecExpr::const_u64(1, 0)));
        g.set_decode(from_reset.or(continuing));
        g.set_update("acc", acc.clone().add(val.zext(8)));
        g.set_update("state", go_c.clone());
        ila.add_instr(g);

        let mut s = Instr::new("stop_instr");
        s.set_decode(state.eq(go_c).and(stop.eq(SpecExpr::const_u64(1, 1))));
        s.set_update("acc", acc);
        s.set_update("state", stop_c);
        ila.add_instr(s);
        ila
    }

    fn set_inputs(state: &mut SpecState, reset: u64, go: u64, stop: u64, val: u64) {
        state.inputs.insert("reset".into(), BitVec::from_u64(1, reset));
        state.inputs.insert("go".into(), BitVec::from_u64(1, go));
        state.inputs.insert("stop".into(), BitVec::from_u64(1, stop));
        state.inputs.insert("val".into(), BitVec::from_u64(2, val));
    }

    #[test]
    fn accumulator_golden_run() {
        let ila = acc_ila();
        let model = GoldenModel::new(&ila).unwrap();
        let mut state = SpecState::zeroed(&ila);
        // Initial state 0 = RESET. go with val=3.
        set_inputs(&mut state, 0, 1, 0, 3);
        assert_eq!(model.step(&mut state).unwrap().as_deref(), Some("go_instr"));
        assert_eq!(state.bvs["acc"].to_u64(), Some(3));
        assert_eq!(state.bvs["state"].to_u64(), Some(1));
        // Continue accumulating.
        set_inputs(&mut state, 0, 0, 0, 2);
        assert_eq!(model.step(&mut state).unwrap().as_deref(), Some("go_instr"));
        assert_eq!(state.bvs["acc"].to_u64(), Some(5));
        // Stop.
        set_inputs(&mut state, 0, 0, 1, 0);
        assert_eq!(model.step(&mut state).unwrap().as_deref(), Some("stop_instr"));
        assert_eq!(state.bvs["acc"].to_u64(), Some(5));
        assert_eq!(state.bvs["state"].to_u64(), Some(2));
        // Reset.
        set_inputs(&mut state, 1, 0, 0, 0);
        assert_eq!(model.step(&mut state).unwrap().as_deref(), Some("reset_instr"));
        assert_eq!(state.bvs["acc"].to_u64(), Some(0));
        assert_eq!(state.bvs["state"].to_u64(), Some(0));
    }

    #[test]
    fn no_instruction_decodes() {
        let ila = acc_ila();
        let model = GoldenModel::new(&ila).unwrap();
        let mut state = SpecState::zeroed(&ila);
        // State RESET with go=0: nothing fires.
        set_inputs(&mut state, 0, 0, 0, 0);
        assert_eq!(model.step(&mut state).unwrap(), None);
    }

    #[test]
    fn overlapping_decodes_detected() {
        let mut ila = Ila::new("overlap");
        ila.new_bv_state("s", 1);
        let mut a = Instr::new("A");
        a.set_decode(SpecExpr::const_u64(1, 1));
        ila.add_instr(a);
        let mut b = Instr::new("B");
        b.set_decode(SpecExpr::const_u64(1, 1));
        ila.add_instr(b);
        let model = GoldenModel::new(&ila).unwrap();
        let state = SpecState::zeroed(&ila);
        assert!(model.decode(&state).is_err());
    }

    #[test]
    fn conditional_store_respected() {
        let mut ila = Ila::new("cs");
        let rd = ila.new_bv_input("rd", 2);
        ila.new_mem_state("regs", 2, 8);
        let mut w = Instr::new("W");
        w.set_decode(SpecExpr::const_u64(1, 1));
        w.set_store_when(
            "regs",
            rd.clone(),
            SpecExpr::const_u64(8, 42),
            rd.neq(SpecExpr::const_u64(2, 0)),
        );
        ila.add_instr(w);
        let model = GoldenModel::new(&ila).unwrap();
        let mut state = SpecState::zeroed(&ila);
        state.inputs.insert("rd".into(), BitVec::from_u64(2, 0));
        model.step(&mut state).unwrap();
        assert_eq!(state.mems["regs"].read(0).to_u64(), Some(0)); // blocked
        state.inputs.insert("rd".into(), BitVec::from_u64(2, 2));
        model.step(&mut state).unwrap();
        assert_eq!(state.mems["regs"].read(2).to_u64(), Some(42));
    }
}
