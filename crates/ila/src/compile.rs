//! Compilation of specification expressions to `owl_smt` terms — the
//! paper's Fig. 8 translation.
//!
//! State references do not lower directly: they route through a
//! [`SpecResolver`], which is how the abstraction function α enters the
//! picture (`Load(expr) → (pre (α expr))` etc.). `owl-core` implements the
//! resolver over a datapath's symbolic trace; tests here use a simple
//! in-memory resolver.

use crate::expr::{BinOp, SpecExpr};
use crate::model::{Ila, IlaError};
use owl_smt::{RomId, TermId, TermManager};
use std::collections::HashMap;

/// Resolves specification-level state references to datapath-level terms.
///
/// Implementations embody the abstraction function: a *pre* resolver maps
/// reads to the initial (or read-timestep) datapath state, a *post*
/// resolver maps them to the state after the write timestep.
pub trait SpecResolver {
    /// Term for a bitvector input or state reference.
    ///
    /// # Errors
    ///
    /// Returns an error if the name has no mapping.
    fn resolve_ref(&mut self, mgr: &mut TermManager, name: &str) -> Result<TermId, IlaError>;

    /// Term for a load from memory state `name` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns an error if the memory has no mapping.
    fn resolve_load(
        &mut self,
        mgr: &mut TermManager,
        name: &str,
        addr: TermId,
    ) -> Result<TermId, IlaError>;
}

/// Compiles a specification expression to a term, routing state references
/// through `resolver` and lookup tables through ROMs created on demand.
///
/// # Errors
///
/// Returns an error if a reference fails to resolve or a table is unknown.
pub fn compile_expr(
    mgr: &mut TermManager,
    ila: &Ila,
    expr: &SpecExpr,
    resolver: &mut dyn SpecResolver,
    rom_cache: &mut HashMap<String, RomId>,
) -> Result<TermId, IlaError> {
    Ok(match expr {
        SpecExpr::Ref(n) => resolver.resolve_ref(mgr, n)?,
        SpecExpr::Const(c) => mgr.bv_const(c.clone()),
        SpecExpr::Not(a) => {
            let av = compile_expr(mgr, ila, a, resolver, rom_cache)?;
            mgr.not(av)
        }
        SpecExpr::Binop(op, a, b) => {
            let x = compile_expr(mgr, ila, a, resolver, rom_cache)?;
            let y = compile_expr(mgr, ila, b, resolver, rom_cache)?;
            match op {
                BinOp::And => mgr.and(x, y),
                BinOp::Or => mgr.or(x, y),
                BinOp::Xor => mgr.xor(x, y),
                BinOp::Add => mgr.add(x, y),
                BinOp::Sub => mgr.sub(x, y),
                BinOp::Mul => mgr.mul(x, y),
                BinOp::Shl => mgr.shl(x, y),
                BinOp::Lshr => mgr.lshr(x, y),
                BinOp::Ashr => mgr.ashr(x, y),
                BinOp::Eq => mgr.eq(x, y),
                BinOp::Neq => mgr.neq(x, y),
                BinOp::Ult => mgr.ult(x, y),
                BinOp::Ule => mgr.ule(x, y),
                BinOp::Slt => mgr.slt(x, y),
                BinOp::Sle => mgr.sle(x, y),
            }
        }
        SpecExpr::Ite(c, t, e) => {
            let cv = compile_expr(mgr, ila, c, resolver, rom_cache)?;
            let tv = compile_expr(mgr, ila, t, resolver, rom_cache)?;
            let ev = compile_expr(mgr, ila, e, resolver, rom_cache)?;
            mgr.ite(cv, tv, ev)
        }
        SpecExpr::Extract(a, high, low) => {
            let av = compile_expr(mgr, ila, a, resolver, rom_cache)?;
            mgr.extract(av, *high, *low)
        }
        SpecExpr::Concat(a, b) => {
            let hv = compile_expr(mgr, ila, a, resolver, rom_cache)?;
            let lv = compile_expr(mgr, ila, b, resolver, rom_cache)?;
            mgr.concat(hv, lv)
        }
        SpecExpr::ZExt(a, w) => {
            let av = compile_expr(mgr, ila, a, resolver, rom_cache)?;
            mgr.zext(av, *w)
        }
        SpecExpr::SExt(a, w) => {
            let av = compile_expr(mgr, ila, a, resolver, rom_cache)?;
            mgr.sext(av, *w)
        }
        SpecExpr::Load(mem, addr) => {
            let av = compile_expr(mgr, ila, addr, resolver, rom_cache)?;
            resolver.resolve_load(mgr, mem, av)?
        }
        SpecExpr::LoadConst(table, addr) => {
            let av = compile_expr(mgr, ila, addr, resolver, rom_cache)?;
            let rom = match rom_cache.get(table) {
                Some(&r) => r,
                None => {
                    let Some((name, aw, dw, data)) = ila.table(table) else {
                        return Err(IlaError::new(format!("unknown table {table}")));
                    };
                    let r = mgr.rom(name.clone(), *aw, *dw, data.clone());
                    rom_cache.insert(table.clone(), r);
                    r
                }
            };
            mgr.rom_select(rom, av)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_bitvec::BitVec;
    use owl_smt::ArrayId;

    /// A resolver backed by plain maps, for testing the translation.
    struct MapResolver {
        refs: HashMap<String, TermId>,
        mems: HashMap<String, ArrayId>,
    }

    impl SpecResolver for MapResolver {
        fn resolve_ref(&mut self, _mgr: &mut TermManager, name: &str) -> Result<TermId, IlaError> {
            self.refs
                .get(name)
                .copied()
                .ok_or_else(|| IlaError::new(format!("no mapping for {name}")))
        }

        fn resolve_load(
            &mut self,
            mgr: &mut TermManager,
            name: &str,
            addr: TermId,
        ) -> Result<TermId, IlaError> {
            let arr = self
                .mems
                .get(name)
                .copied()
                .ok_or_else(|| IlaError::new(format!("no mapping for memory {name}")))?;
            Ok(mgr.array_select(arr, addr))
        }
    }

    #[test]
    fn compiles_arithmetic_over_resolved_refs() {
        let mut ila = Ila::new("t");
        let a = ila.new_bv_input("a", 8);
        let b = ila.new_bv_input("b", 8);
        let expr = a.add(b).eq(SpecExpr::const_u64(8, 10));

        let mut mgr = TermManager::new();
        let ta = mgr.fresh_var("a", 8);
        let tb = mgr.fresh_var("b", 8);
        let mut resolver = MapResolver {
            refs: [("a".to_string(), ta), ("b".to_string(), tb)].into(),
            mems: HashMap::new(),
        };
        let t = compile_expr(&mut mgr, &ila, &expr, &mut resolver, &mut HashMap::new()).unwrap();
        let sum = mgr.add(ta, tb);
        let ten = mgr.const_u64(8, 10);
        assert_eq!(t, mgr.eq(sum, ten));
    }

    #[test]
    fn compiles_loads_through_resolver() {
        let mut ila = Ila::new("t");
        let src = ila.new_bv_input("src", 2);
        ila.new_mem_state("regs", 2, 8);
        let expr = SpecExpr::load("regs", src);

        let mut mgr = TermManager::new();
        let tsrc = mgr.fresh_var("src", 2);
        let arr = mgr.fresh_array("rf", 2, 8);
        let mut resolver = MapResolver {
            refs: [("src".to_string(), tsrc)].into(),
            mems: [("regs".to_string(), arr)].into(),
        };
        let t = compile_expr(&mut mgr, &ila, &expr, &mut resolver, &mut HashMap::new()).unwrap();
        assert_eq!(t, mgr.array_select(arr, tsrc));
    }

    #[test]
    fn compiles_mem_const_to_rom() {
        let mut ila = Ila::new("t");
        let a = ila.new_bv_input("a", 2);
        ila.new_mem_const("sbox", 2, 8, vec![BitVec::from_u64(8, 9); 4]);
        let expr = SpecExpr::load_const("sbox", a);

        let mut mgr = TermManager::new();
        let ta = mgr.fresh_var("a", 2);
        let mut resolver = MapResolver { refs: [("a".to_string(), ta)].into(), mems: HashMap::new() };
        let mut cache = HashMap::new();
        let t = compile_expr(&mut mgr, &ila, &expr, &mut resolver, &mut cache).unwrap();
        assert_eq!(mgr.width(t), 8);
        assert!(cache.contains_key("sbox"));
        // Second compilation reuses the cached ROM and hash-conses.
        let t2 = compile_expr(&mut mgr, &ila, &expr, &mut resolver, &mut cache).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn unresolved_ref_errors() {
        let mut ila = Ila::new("t");
        let x = ila.new_bv_input("x", 4);
        let mut mgr = TermManager::new();
        let mut resolver = MapResolver { refs: HashMap::new(), mems: HashMap::new() };
        let err =
            compile_expr(&mut mgr, &ila, &x, &mut resolver, &mut HashMap::new()).unwrap_err();
        assert!(err.to_string().contains("no mapping"));
    }
}
