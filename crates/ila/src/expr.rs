//! The ILA specification expression language (the `expr` grammar of the
//! paper's Fig. 8).

use owl_bitvec::BitVec;

/// Binary operators available in specification expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Addition modulo `2^w`.
    Add,
    /// Subtraction modulo `2^w`.
    Sub,
    /// Multiplication modulo `2^w`.
    Mul,
    /// Left shift.
    Shl,
    /// Logical right shift.
    Lshr,
    /// Arithmetic right shift.
    Ashr,
    /// Equality (1-bit result).
    Eq,
    /// Disequality (1-bit result).
    Neq,
    /// Unsigned less-than (1-bit result).
    Ult,
    /// Unsigned less-or-equal (1-bit result).
    Ule,
    /// Signed less-than (1-bit result).
    Slt,
    /// Signed less-or-equal (1-bit result).
    Sle,
}

impl BinOp {
    /// True for operators with a 1-bit result.
    #[must_use]
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Neq | BinOp::Ult | BinOp::Ule | BinOp::Slt | BinOp::Sle
        )
    }
}

/// A specification expression over ILA inputs and state.
///
/// References are by name; [`crate::Ila::check`] validates that every
/// reference resolves and is well-typed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecExpr {
    /// Reference to a bitvector input or bitvector state variable.
    Ref(String),
    /// A constant.
    Const(BitVec),
    /// Bitwise NOT (ILA `!expr` on bitvectors).
    Not(Box<SpecExpr>),
    /// Binary operator application.
    Binop(BinOp, Box<SpecExpr>, Box<SpecExpr>),
    /// `Ite(cond, a, b)`; a nonzero condition selects `a`.
    Ite(Box<SpecExpr>, Box<SpecExpr>, Box<SpecExpr>),
    /// `Extract(e, high, low)`.
    Extract(Box<SpecExpr>, u32, u32),
    /// `Concat(high, low)`.
    Concat(Box<SpecExpr>, Box<SpecExpr>),
    /// `ZExt(e, width)`.
    ZExt(Box<SpecExpr>, u32),
    /// `SExt(e, width)` (ILA's sign-extension intrinsic).
    SExt(Box<SpecExpr>, u32),
    /// `Load(mem_state, addr)` — read architectural memory state.
    Load(String, Box<SpecExpr>),
    /// `LoadConst(table, addr)` — read an ILA `MemConst` lookup table.
    LoadConst(String, Box<SpecExpr>),
}

// The builder methods deliberately mirror operator names (`add`, `shl`,
// ...) without implementing the std traits: they build spec AST nodes,
// and the by-value chaining style is the DSL's documented surface.
#[allow(clippy::should_implement_trait)]
impl SpecExpr {
    /// Reference to an input or bitvector state by name.
    #[must_use]
    pub fn var(name: impl Into<String>) -> SpecExpr {
        SpecExpr::Ref(name.into())
    }

    /// Constant from a `u64`.
    #[must_use]
    pub fn const_u64(width: u32, value: u64) -> SpecExpr {
        SpecExpr::Const(BitVec::from_u64(width, value))
    }

    /// Constant from a [`BitVec`].
    #[must_use]
    pub fn constant(value: BitVec) -> SpecExpr {
        SpecExpr::Const(value)
    }

    /// Memory-state load.
    #[must_use]
    pub fn load(mem: impl Into<String>, addr: SpecExpr) -> SpecExpr {
        SpecExpr::Load(mem.into(), Box::new(addr))
    }

    /// Lookup-table (`MemConst`) load.
    #[must_use]
    pub fn load_const(table: impl Into<String>, addr: SpecExpr) -> SpecExpr {
        SpecExpr::LoadConst(table.into(), Box::new(addr))
    }

    /// Bitwise NOT.
    #[must_use]
    pub fn not(self) -> SpecExpr {
        SpecExpr::Not(Box::new(self))
    }

    /// Binary operation.
    #[must_use]
    pub fn binop(op: BinOp, lhs: SpecExpr, rhs: SpecExpr) -> SpecExpr {
        SpecExpr::Binop(op, Box::new(lhs), Box::new(rhs))
    }

    /// Addition.
    #[must_use]
    pub fn add(self, rhs: SpecExpr) -> SpecExpr {
        SpecExpr::binop(BinOp::Add, self, rhs)
    }

    /// Subtraction.
    #[must_use]
    pub fn sub(self, rhs: SpecExpr) -> SpecExpr {
        SpecExpr::binop(BinOp::Sub, self, rhs)
    }

    /// Multiplication.
    #[must_use]
    pub fn mul(self, rhs: SpecExpr) -> SpecExpr {
        SpecExpr::binop(BinOp::Mul, self, rhs)
    }

    /// Bitwise AND.
    #[must_use]
    pub fn and(self, rhs: SpecExpr) -> SpecExpr {
        SpecExpr::binop(BinOp::And, self, rhs)
    }

    /// Bitwise OR.
    #[must_use]
    pub fn or(self, rhs: SpecExpr) -> SpecExpr {
        SpecExpr::binop(BinOp::Or, self, rhs)
    }

    /// Bitwise XOR.
    #[must_use]
    pub fn xor(self, rhs: SpecExpr) -> SpecExpr {
        SpecExpr::binop(BinOp::Xor, self, rhs)
    }

    /// Left shift.
    #[must_use]
    pub fn shl(self, rhs: SpecExpr) -> SpecExpr {
        SpecExpr::binop(BinOp::Shl, self, rhs)
    }

    /// Logical right shift.
    #[must_use]
    pub fn lshr(self, rhs: SpecExpr) -> SpecExpr {
        SpecExpr::binop(BinOp::Lshr, self, rhs)
    }

    /// Arithmetic right shift.
    #[must_use]
    pub fn ashr(self, rhs: SpecExpr) -> SpecExpr {
        SpecExpr::binop(BinOp::Ashr, self, rhs)
    }

    /// Equality.
    #[must_use]
    pub fn eq(self, rhs: SpecExpr) -> SpecExpr {
        SpecExpr::binop(BinOp::Eq, self, rhs)
    }

    /// Disequality.
    #[must_use]
    pub fn neq(self, rhs: SpecExpr) -> SpecExpr {
        SpecExpr::binop(BinOp::Neq, self, rhs)
    }

    /// Unsigned less-than.
    #[must_use]
    pub fn ult(self, rhs: SpecExpr) -> SpecExpr {
        SpecExpr::binop(BinOp::Ult, self, rhs)
    }

    /// Unsigned less-or-equal.
    #[must_use]
    pub fn ule(self, rhs: SpecExpr) -> SpecExpr {
        SpecExpr::binop(BinOp::Ule, self, rhs)
    }

    /// Unsigned greater-than.
    #[must_use]
    pub fn ugt(self, rhs: SpecExpr) -> SpecExpr {
        SpecExpr::binop(BinOp::Ult, rhs, self)
    }

    /// Signed less-than.
    #[must_use]
    pub fn slt(self, rhs: SpecExpr) -> SpecExpr {
        SpecExpr::binop(BinOp::Slt, self, rhs)
    }

    /// Signed less-or-equal.
    #[must_use]
    pub fn sle(self, rhs: SpecExpr) -> SpecExpr {
        SpecExpr::binop(BinOp::Sle, self, rhs)
    }

    /// If-then-else.
    #[must_use]
    pub fn ite(cond: SpecExpr, then: SpecExpr, els: SpecExpr) -> SpecExpr {
        SpecExpr::Ite(Box::new(cond), Box::new(then), Box::new(els))
    }

    /// Bit extraction.
    #[must_use]
    pub fn extract(self, high: u32, low: u32) -> SpecExpr {
        SpecExpr::Extract(Box::new(self), high, low)
    }

    /// Concatenation (self is the high part).
    #[must_use]
    pub fn concat(self, low: SpecExpr) -> SpecExpr {
        SpecExpr::Concat(Box::new(self), Box::new(low))
    }

    /// Zero extension.
    #[must_use]
    pub fn zext(self, width: u32) -> SpecExpr {
        SpecExpr::ZExt(Box::new(self), width)
    }

    /// Sign extension.
    #[must_use]
    pub fn sext(self, width: u32) -> SpecExpr {
        SpecExpr::SExt(Box::new(self), width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let e = SpecExpr::var("a").add(SpecExpr::const_u64(8, 1)).eq(SpecExpr::var("b"));
        let SpecExpr::Binop(BinOp::Eq, lhs, _) = &e else { panic!() };
        let SpecExpr::Binop(BinOp::Add, _, _) = &**lhs else { panic!() };
        assert!(BinOp::Eq.is_predicate());
        assert!(!BinOp::Add.is_predicate());
    }

    #[test]
    fn load_forms() {
        let l = SpecExpr::load("regs", SpecExpr::var("src1"));
        assert!(matches!(l, SpecExpr::Load(ref m, _) if m == "regs"));
        let t = SpecExpr::load_const("sbox", SpecExpr::const_u64(8, 3));
        assert!(matches!(t, SpecExpr::LoadConst(ref m, _) if m == "sbox"));
    }
}
