//! Constant-time SHA-256 for the CMOV ISA (paper §5.2).
//!
//! The generated program is *independent of the message*: it always
//! processes exactly one padded block, using `CMOV` to select between
//! message bytes, the `0x80` pad byte, and zero based on the length word
//! in data memory. The number of executed instructions — and hence cycles
//! — is therefore identical for every input length (the paper evaluates
//! lengths 4 through 32).
//!
//! A pure-Rust reference implementation is provided for digest checks.

use crate::asm::{Asm, Program};

/// SHA-256 round constants (FIPS 180-4).
pub const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2,
];

/// SHA-256 initial hash values.
pub const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
    0x5be0cd19,
];

/// Byte address of the message-length word.
pub const LEN_ADDR: u32 = 0x100;
/// Byte address of the 64-byte message block area (big-endian words).
pub const BLOCK_ADDR: u32 = 0x140;
/// Byte address of the 16-word message-schedule scratch area.
pub const SCHED_ADDR: u32 = 0x200;
/// Byte address of the 8-word output digest.
pub const OUT_ADDR: u32 = 0x280;

/// Maximum message length the single-block program supports.
pub const MAX_LEN: usize = 55;

// Register allocation: x8..x15 = a..h, x16 = len, x1..x7 = temps.
const A: u32 = 8;
const E: u32 = 12;
const LEN: u32 = 16;

/// Builds the constant-time SHA-256 program (one padded block).
#[must_use]
pub fn sha256_program() -> Program {
    let mut p = Program::new();

    // len into x16.
    p.push(Asm::Lw { rd: LEN, rs1: 0, offset: LEN_ADDR as i32 });

    // Build the padded schedule words w[0..14) with CMOV byte selection.
    for i in 0..14u32 {
        p.push(Asm::Lw { rd: 1, rs1: 0, offset: (BLOCK_ADDR + 4 * i) as i32 });
        p.li(7, 0); // accumulator for the padded word
        for j in 0..4u32 {
            let k = 4 * i + j;
            let shift = 24 - 8 * j;
            // byte = (word >> shift) & 0xFF
            p.push(Asm::Srli { rd: 2, rs1: 1, shamt: shift });
            p.push(Asm::Andi { rd: 2, rs1: 2, imm: 0xFF });
            // keep the message byte when k < len
            p.push(Asm::Addi { rd: 3, rs1: 0, imm: k as i32 });
            p.push(Asm::Sltu { rd: 4, rs1: 3, rs2: LEN });
            p.li(5, 0);
            p.push(Asm::Cmov { rd: 5, rs1: 2, rs2: 4 });
            // the 0x80 terminator when k == len
            p.push(Asm::Xor { rd: 6, rs1: 3, rs2: LEN });
            p.push(Asm::Sltiu { rd: 6, rs1: 6, imm: 1 });
            p.li(2, 0x80);
            p.li(3, 0);
            p.push(Asm::Cmov { rd: 3, rs1: 2, rs2: 6 });
            p.push(Asm::Or { rd: 5, rs1: 5, rs2: 3 });
            // position the byte and accumulate
            p.push(Asm::Slli { rd: 5, rs1: 5, shamt: shift });
            p.push(Asm::Or { rd: 7, rs1: 7, rs2: 5 });
        }
        p.push(Asm::Sw { rs2: 7, rs1: 0, offset: (SCHED_ADDR + 4 * i) as i32 });
    }
    // w[14] = 0, w[15] = len * 8 (bit length; single block, len <= 55).
    p.push(Asm::Sw { rs2: 0, rs1: 0, offset: (SCHED_ADDR + 56) as i32 });
    p.push(Asm::Slli { rd: 1, rs1: LEN, shamt: 3 });
    p.push(Asm::Sw { rs2: 1, rs1: 0, offset: (SCHED_ADDR + 60) as i32 });

    // Working variables a..h = H0..H7.
    for (i, &h) in H0.iter().enumerate() {
        p.li(A + i as u32, h);
    }

    // 64 rounds, fully unrolled.
    for t in 0..64u32 {
        let sched = |idx: u32| (SCHED_ADDR + 4 * (idx % 16)) as i32;
        if t < 16 {
            p.push(Asm::Lw { rd: 1, rs1: 0, offset: sched(t) });
        } else {
            // w[t] = σ1(w[t-2]) + w[t-7] + σ0(w[t-15]) + w[t-16]
            p.push(Asm::Lw { rd: 2, rs1: 0, offset: sched(t - 2) });
            p.push(Asm::Rori { rd: 3, rs1: 2, shamt: 17 });
            p.push(Asm::Rori { rd: 4, rs1: 2, shamt: 19 });
            p.push(Asm::Srli { rd: 5, rs1: 2, shamt: 10 });
            p.push(Asm::Xor { rd: 3, rs1: 3, rs2: 4 });
            p.push(Asm::Xor { rd: 3, rs1: 3, rs2: 5 });
            p.push(Asm::Lw { rd: 4, rs1: 0, offset: sched(t - 7) });
            p.push(Asm::Add { rd: 3, rs1: 3, rs2: 4 });
            p.push(Asm::Lw { rd: 2, rs1: 0, offset: sched(t - 15) });
            p.push(Asm::Rori { rd: 4, rs1: 2, shamt: 7 });
            p.push(Asm::Rori { rd: 5, rs1: 2, shamt: 18 });
            p.push(Asm::Srli { rd: 6, rs1: 2, shamt: 3 });
            p.push(Asm::Xor { rd: 4, rs1: 4, rs2: 5 });
            p.push(Asm::Xor { rd: 4, rs1: 4, rs2: 6 });
            p.push(Asm::Add { rd: 3, rs1: 3, rs2: 4 });
            p.push(Asm::Lw { rd: 2, rs1: 0, offset: sched(t) });
            p.push(Asm::Add { rd: 1, rs1: 3, rs2: 2 });
            p.push(Asm::Sw { rs2: 1, rs1: 0, offset: sched(t) });
        }
        // T1 = h + Σ1(e) + Ch(e,f,g) + K[t] + w[t]
        p.push(Asm::Rori { rd: 2, rs1: E, shamt: 6 });
        p.push(Asm::Rori { rd: 3, rs1: E, shamt: 11 });
        p.push(Asm::Rori { rd: 4, rs1: E, shamt: 25 });
        p.push(Asm::Xor { rd: 2, rs1: 2, rs2: 3 });
        p.push(Asm::Xor { rd: 2, rs1: 2, rs2: 4 });
        p.push(Asm::And { rd: 3, rs1: E, rs2: E + 1 });
        p.push(Asm::Andn { rd: 4, rs1: E + 2, rs2: E });
        p.push(Asm::Xor { rd: 3, rs1: 3, rs2: 4 });
        p.push(Asm::Add { rd: 2, rs1: E + 3, rs2: 2 }); // + h
        p.push(Asm::Add { rd: 2, rs1: 2, rs2: 3 });
        p.li(3, K[t as usize]);
        p.push(Asm::Add { rd: 2, rs1: 2, rs2: 3 });
        p.push(Asm::Add { rd: 2, rs1: 2, rs2: 1 }); // T1 in x2
        // T2 = Σ0(a) + Maj(a,b,c)
        p.push(Asm::Rori { rd: 3, rs1: A, shamt: 2 });
        p.push(Asm::Rori { rd: 4, rs1: A, shamt: 13 });
        p.push(Asm::Rori { rd: 5, rs1: A, shamt: 22 });
        p.push(Asm::Xor { rd: 3, rs1: 3, rs2: 4 });
        p.push(Asm::Xor { rd: 3, rs1: 3, rs2: 5 });
        p.push(Asm::And { rd: 4, rs1: A, rs2: A + 1 });
        p.push(Asm::And { rd: 5, rs1: A, rs2: A + 2 });
        p.push(Asm::Xor { rd: 4, rs1: 4, rs2: 5 });
        p.push(Asm::And { rd: 5, rs1: A + 1, rs2: A + 2 });
        p.push(Asm::Xor { rd: 4, rs1: 4, rs2: 5 });
        p.push(Asm::Add { rd: 3, rs1: 3, rs2: 4 }); // T2 in x3
        // Rotate the working variables.
        p.push(Asm::Add { rd: 15, rs1: 14, rs2: 0 }); // h = g
        p.push(Asm::Add { rd: 14, rs1: 13, rs2: 0 }); // g = f
        p.push(Asm::Add { rd: 13, rs1: 12, rs2: 0 }); // f = e
        p.push(Asm::Add { rd: 12, rs1: 11, rs2: 2 }); // e = d + T1
        p.push(Asm::Add { rd: 11, rs1: 10, rs2: 0 }); // d = c
        p.push(Asm::Add { rd: 10, rs1: 9, rs2: 0 }); // c = b
        p.push(Asm::Add { rd: 9, rs1: 8, rs2: 0 }); // b = a
        p.push(Asm::Add { rd: 8, rs1: 2, rs2: 3 }); // a = T1 + T2
    }

    // Digest = H0..H7 + a..h.
    for (i, &h) in H0.iter().enumerate() {
        p.li(1, h);
        p.push(Asm::Add { rd: 1, rs1: 1, rs2: A + i as u32 });
        p.push(Asm::Sw { rs2: 1, rs1: 0, offset: (OUT_ADDR + 4 * i as u32) as i32 });
    }
    p
}

/// Packs a message into the data-memory image the program expects:
/// the length word plus the big-endian block words (zero beyond the
/// message).
///
/// # Panics
///
/// Panics if the message exceeds [`MAX_LEN`] bytes.
#[must_use]
pub fn message_data(msg: &[u8]) -> Vec<(u64, u32)> {
    assert!(msg.len() <= MAX_LEN, "single-block program supports up to {MAX_LEN} bytes");
    let mut out = vec![(u64::from(LEN_ADDR) >> 2, msg.len() as u32)];
    for i in 0..16usize {
        let mut word = 0u32;
        for j in 0..4 {
            let k = 4 * i + j;
            let byte = msg.get(k).copied().unwrap_or(0);
            word |= u32::from(byte) << (24 - 8 * j);
        }
        out.push(((u64::from(BLOCK_ADDR) >> 2) + i as u64, word));
    }
    out
}

/// Reads the digest back from a finished simulation.
#[must_use]
pub fn read_digest(sim: &owl_oyster::Interpreter<'_>) -> [u8; 32] {
    let mut digest = [0u8; 32];
    for i in 0..8usize {
        let word = sim
            .mem("d_mem")
            .expect("d_mem")
            .read((u64::from(OUT_ADDR) >> 2) + i as u64)
            .to_u64()
            .expect("digest word") as u32;
        digest[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    digest
}

/// Reference SHA-256 (any length), for checking hardware digests.
#[must_use]
pub fn sha256_ref(msg: &[u8]) -> [u8; 32] {
    let mut padded = msg.to_vec();
    padded.push(0x80);
    while padded.len() % 64 != 56 {
        padded.push(0);
    }
    padded.extend_from_slice(&(8 * msg.len() as u64).to_be_bytes());

    let mut h = H0;
    for block in padded.chunks_exact(64) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4 bytes"));
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for t in 0..64 {
            let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t]);
            let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (hi, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *hi = hi.wrapping_add(v);
        }
    }
    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn reference_matches_nist_vectors() {
        assert_eq!(
            hex(&sha256_ref(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256_ref(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256_ref(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn program_is_message_independent() {
        // The program text never depends on the message: it is generated
        // once, with a fixed instruction count.
        let p1 = sha256_program();
        let p2 = sha256_program();
        assert_eq!(p1.encode(), p2.encode());
        assert!(p1.len() > 2000, "fully unrolled program expected");
    }

    #[test]
    fn message_data_packs_big_endian() {
        let data = message_data(b"abcd");
        assert_eq!(data[0], (u64::from(LEN_ADDR) >> 2, 4));
        assert_eq!(data[1], (u64::from(BLOCK_ADDR) >> 2, 0x6162_6364));
        assert_eq!(data[2].1, 0);
    }
}
