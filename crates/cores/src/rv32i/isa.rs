//! The instruction table and shared semantics for the RISC-V cores.
//!
//! Everything semantic is written once, generically over
//! [`SynthExpr`], and instantiated by both the ILA specification (over
//! `SpecExpr`) and the datapath (over `Expr`/`Wire`): immediate
//! decoding, the ALU functions, branch comparisons, and the sub-word
//! load/store logic. The [`InstrSpec`] table carries each instruction's
//! encoding plus the *expected* control configuration — used to build the
//! handwritten reference control of Table 2 and to cross-check synthesis
//! results, never fed to the synthesizer.

use owl_hdl::bitops::{self, SynthExpr};
use std::fmt;

/// Which ISA extensions a core variant implements (paper Table 1 rows).
/// Extension sets are cumulative: `zbkc` implies `zbkb`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Extensions {
    /// Zbkb: bit-manipulation for cryptography.
    pub zbkb: bool,
    /// Zbkc: carry-less multiplication.
    pub zbkc: bool,
}

impl Extensions {
    /// The RV32I base alone.
    pub const BASE: Extensions = Extensions { zbkb: false, zbkc: false };
    /// RV32I + Zbkb.
    pub const ZBKB: Extensions = Extensions { zbkb: true, zbkc: false };
    /// RV32I + Zbkb + Zbkc.
    pub const ZBKC: Extensions = Extensions { zbkb: true, zbkc: true };
}

impl fmt::Display for Extensions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.zbkc {
            write!(f, "RV32I + Zbkc")
        } else if self.zbkb {
            write!(f, "RV32I + Zbkb")
        } else {
            write!(f, "RV32I")
        }
    }
}

/// The functions the ALU can perform; `code()` gives the 5-bit select
/// used by the `alu_op` control signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    /// Pass the second operand through (LUI).
    PassB,
    Rol,
    Ror,
    Andn,
    Orn,
    Xnor,
    Pack,
    Packh,
    Brev8,
    Rev8,
    Zip,
    Unzip,
    Clmul,
    Clmulh,
}

impl AluOp {
    /// All operations available with the given extensions, in select
    /// order.
    #[must_use]
    pub fn available(ext: Extensions) -> Vec<AluOp> {
        let mut ops = vec![
            AluOp::Add,
            AluOp::Sub,
            AluOp::Sll,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Xor,
            AluOp::Srl,
            AluOp::Sra,
            AluOp::Or,
            AluOp::And,
            AluOp::PassB,
        ];
        if ext.zbkb {
            ops.extend([
                AluOp::Rol,
                AluOp::Ror,
                AluOp::Andn,
                AluOp::Orn,
                AluOp::Xnor,
                AluOp::Pack,
                AluOp::Packh,
                AluOp::Brev8,
                AluOp::Rev8,
                AluOp::Zip,
                AluOp::Unzip,
            ]);
        }
        if ext.zbkc {
            ops.extend([AluOp::Clmul, AluOp::Clmulh]);
        }
        ops
    }

    /// The operation's select code (its index in the full operation list).
    #[must_use]
    pub fn code(self) -> u64 {
        self as u64
    }

    /// A lowercase tag for wire naming.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Sll => "sll",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Xor => "xor",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Or => "or",
            AluOp::And => "and",
            AluOp::PassB => "passb",
            AluOp::Rol => "rol",
            AluOp::Ror => "ror",
            AluOp::Andn => "andn",
            AluOp::Orn => "orn",
            AluOp::Xnor => "xnor",
            AluOp::Pack => "pack",
            AluOp::Packh => "packh",
            AluOp::Brev8 => "brev8",
            AluOp::Rev8 => "rev8",
            AluOp::Zip => "zip",
            AluOp::Unzip => "unzip",
            AluOp::Clmul => "clmul",
            AluOp::Clmulh => "clmulh",
        }
    }

    /// Applies the operation to two 32-bit operands.
    #[must_use]
    pub fn apply<E: SynthExpr>(self, a: &E, b: &E) -> E {
        let shamt = |b: &E| b.clone().and_(E::lit(32, 31));
        // Width 32 satisfies every `bitops` precondition (power of two,
        // byte multiple, even, >= 16, nonzero), so the fallible
        // constructors cannot fail here.
        let w32 = |r: Result<E, bitops::WidthError>| match r {
            Ok(e) => e,
            Err(e) => unreachable!("rv32 bitop at width 32: {e}"),
        };
        match self {
            AluOp::Add => a.clone().add_(b.clone()),
            AluOp::Sub => a.clone().sub_(b.clone()),
            AluOp::Sll => a.clone().shl_(shamt(b)),
            AluOp::Slt => a.clone().slt_(b.clone()).zext_(32),
            AluOp::Sltu => a.clone().ult_(b.clone()).zext_(32),
            AluOp::Xor => a.clone().xor_(b.clone()),
            AluOp::Srl => a.clone().lshr_(shamt(b)),
            AluOp::Sra => a.clone().ashr_(shamt(b)),
            AluOp::Or => a.clone().or_(b.clone()),
            AluOp::And => a.clone().and_(b.clone()),
            AluOp::PassB => b.clone(),
            AluOp::Rol => w32(bitops::rol(a.clone(), b.clone(), 32)),
            AluOp::Ror => w32(bitops::ror(a.clone(), b.clone(), 32)),
            AluOp::Andn => bitops::andn(a.clone(), b.clone()),
            AluOp::Orn => bitops::orn(a.clone(), b.clone()),
            AluOp::Xnor => bitops::xnor(a.clone(), b.clone()),
            AluOp::Pack => w32(bitops::pack(a.clone(), b.clone(), 32)),
            AluOp::Packh => w32(bitops::packh(a.clone(), b.clone(), 32)),
            AluOp::Brev8 => w32(bitops::brev8(a.clone(), 32)),
            AluOp::Rev8 => w32(bitops::rev8(a.clone(), 32)),
            AluOp::Zip => w32(bitops::zip(a.clone(), 32)),
            AluOp::Unzip => w32(bitops::unzip(a.clone(), 32)),
            AluOp::Clmul => w32(bitops::clmul(a.clone(), b.clone(), 32)),
            AluOp::Clmulh => w32(bitops::clmulh(a.clone(), b.clone(), 32)),
        }
    }
}

/// Immediate encodings; `code()` gives the `imm_sel` control value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ImmFormat {
    I,
    S,
    B,
    U,
    J,
}

impl ImmFormat {
    /// The format's select code.
    #[must_use]
    pub fn code(self) -> u64 {
        self as u64
    }

    /// Decodes the immediate from a 32-bit instruction word.
    #[must_use]
    pub fn decode<E: SynthExpr>(self, instr: &E) -> E {
        let i = |h: u32, l: u32| instr.clone().extract_(h, l);
        match self {
            ImmFormat::I => i(31, 20).sext_(32),
            ImmFormat::S => i(31, 25).concat_(i(11, 7)).sext_(32),
            ImmFormat::B => i(31, 31)
                .concat_(i(7, 7))
                .concat_(i(30, 25))
                .concat_(i(11, 8))
                .concat_(E::lit(1, 0))
                .sext_(32),
            ImmFormat::U => i(31, 12).concat_(E::lit(12, 0)),
            ImmFormat::J => i(31, 31)
                .concat_(i(19, 12))
                .concat_(i(20, 20))
                .concat_(i(30, 21))
                .concat_(E::lit(1, 0))
                .sext_(32),
        }
    }
}

/// Branch comparison select; `Never` is the non-branch value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BranchCond {
    Never,
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

impl BranchCond {
    /// The condition's select code.
    #[must_use]
    pub fn code(self) -> u64 {
        self as u64
    }

    /// Applies the comparison (1-bit result).
    #[must_use]
    pub fn apply<E: SynthExpr>(self, a: &E, b: &E) -> E {
        match self {
            BranchCond::Never => E::lit(1, 0),
            BranchCond::Eq => a.clone().eq_(b.clone()),
            BranchCond::Ne => a.clone().eq_(b.clone()).not_(),
            BranchCond::Lt => a.clone().slt_(b.clone()),
            BranchCond::Ge => a.clone().slt_(b.clone()).not_(),
            BranchCond::Ltu => a.clone().ult_(b.clone()),
            BranchCond::Geu => a.clone().ult_(b.clone()).not_(),
        }
    }
}

/// Write-back source select.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum WbSource {
    Alu,
    Mem,
    PcPlus4,
}

impl WbSource {
    /// The source's select code.
    #[must_use]
    pub fn code(self) -> u64 {
        self as u64
    }
}

/// Memory access size (`mask_mode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum MaskMode {
    Byte,
    Half,
    Word,
}

impl MaskMode {
    /// The mode's select code.
    #[must_use]
    pub fn code(self) -> u64 {
        self as u64
    }
}

/// Extracts the value loaded from a memory word for a given access size
/// and signedness, where `addr_lo` is the low two address bits.
#[must_use]
pub fn load_value<E: SynthExpr>(mask: MaskMode, sign: bool, word: &E, addr_lo: &E) -> E {
    let extend = |v: E| if sign { v.sext_(32) } else { v.zext_(32) };
    match mask {
        MaskMode::Byte => {
            let b0 = word.clone().extract_(7, 0);
            let b1 = word.clone().extract_(15, 8);
            let b2 = word.clone().extract_(23, 16);
            let b3 = word.clone().extract_(31, 24);
            let sel = addr_lo.clone();
            let byte = E::ite_(
                sel.clone().eq_(E::lit(2, 3)),
                b3,
                E::ite_(
                    sel.clone().eq_(E::lit(2, 2)),
                    b2,
                    E::ite_(sel.eq_(E::lit(2, 1)), b1, b0),
                ),
            );
            extend(byte)
        }
        MaskMode::Half => {
            let lo = word.clone().extract_(15, 0);
            let hi = word.clone().extract_(31, 16);
            let half = E::ite_(addr_lo.clone().extract_(1, 1), hi, lo);
            extend(half)
        }
        MaskMode::Word => word.clone(),
    }
}

/// Merges a store value into an old memory word for a given access size,
/// where `addr_lo` is the low two address bits.
#[must_use]
pub fn store_merge<E: SynthExpr>(mask: MaskMode, old: &E, value: &E, addr_lo: &E) -> E {
    match mask {
        MaskMode::Byte => {
            let v = value.clone().extract_(7, 0);
            let sel = |i: u64| addr_lo.clone().eq_(E::lit(2, i));
            let b = |h: u32, l: u32| old.clone().extract_(h, l);
            E::ite_(sel(3), v.clone(), b(31, 24))
                .concat_(E::ite_(sel(2), v.clone(), b(23, 16)))
                .concat_(E::ite_(sel(1), v.clone(), b(15, 8)))
                .concat_(E::ite_(sel(0), v, b(7, 0)))
        }
        MaskMode::Half => {
            let v = value.clone().extract_(15, 0);
            let hi_sel = addr_lo.clone().extract_(1, 1);
            E::ite_(hi_sel.clone(), v.clone(), old.clone().extract_(31, 16))
                .concat_(E::ite_(hi_sel, old.clone().extract_(15, 0), v))
        }
        MaskMode::Word => value.clone(),
    }
}

/// The control configuration an instruction needs — the "answer key"
/// used by the handwritten reference control and by tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ctrl {
    /// ALU function.
    pub alu_op: AluOp,
    /// ALU operand 2 comes from the immediate.
    pub alu_imm: bool,
    /// ALU operand 1 comes from the program counter.
    pub alu_src1_pc: bool,
    /// Immediate format.
    pub imm: ImmFormat,
    /// Write the register file.
    pub reg_write: bool,
    /// Write-back source.
    pub wb: WbSource,
    /// Assert the data-memory read enable.
    pub mem_read: bool,
    /// Assert the data-memory write enable.
    pub mem_write: bool,
    /// Access size for loads/stores.
    pub mask: MaskMode,
    /// Sign-extend sub-word loads.
    pub mem_sign: bool,
    /// Unconditional pc redirect (JAL/JALR).
    pub jump: bool,
    /// Branch condition (Never for non-branches).
    pub branch: BranchCond,
    /// The redirect target is `(rs1 + imm) & ~1` (JALR) rather than
    /// `pc + imm`.
    pub jalr: bool,
}

impl Ctrl {
    /// A no-effect baseline configuration.
    #[must_use]
    pub fn nop() -> Ctrl {
        Ctrl {
            alu_op: AluOp::Add,
            alu_imm: false,
            alu_src1_pc: false,
            imm: ImmFormat::I,
            reg_write: false,
            wb: WbSource::Alu,
            mem_read: false,
            mem_write: false,
            mask: MaskMode::Word,
            mem_sign: false,
            jump: false,
            branch: BranchCond::Never,
            jalr: false,
        }
    }

    fn alu_r(op: AluOp) -> Ctrl {
        Ctrl { alu_op: op, reg_write: true, ..Ctrl::nop() }
    }

    fn alu_i(op: AluOp, fmt: ImmFormat) -> Ctrl {
        Ctrl { alu_op: op, alu_imm: true, imm: fmt, reg_write: true, ..Ctrl::nop() }
    }

    fn load(mask: MaskMode, sign: bool) -> Ctrl {
        Ctrl {
            alu_imm: true,
            reg_write: true,
            wb: WbSource::Mem,
            mem_read: true,
            mask,
            mem_sign: sign,
            ..Ctrl::nop()
        }
    }

    fn store(mask: MaskMode) -> Ctrl {
        Ctrl { alu_imm: true, imm: ImmFormat::S, mem_write: true, mask, ..Ctrl::nop() }
    }

    fn branch(cond: BranchCond) -> Ctrl {
        Ctrl { imm: ImmFormat::B, branch: cond, alu_op: AluOp::Sub, ..Ctrl::nop() }
    }
}

/// One instruction's encoding and control configuration.
#[derive(Debug, Clone, Copy)]
pub struct InstrSpec {
    /// Mnemonic (also the ILA instruction name).
    pub name: &'static str,
    /// Bits \[6:0\].
    pub opcode: u32,
    /// Bits \[14:12\], where fixed.
    pub funct3: Option<u32>,
    /// Bits \[31:25\], where fixed.
    pub funct7: Option<u32>,
    /// Bits \[24:20\], for unary Zbkb ops with a fixed rs2 field.
    pub rs2_field: Option<u32>,
    /// The expected control configuration.
    pub ctrl: Ctrl,
}

const OP_LUI: u32 = 0b011_0111;
const OP_AUIPC: u32 = 0b001_0111;
const OP_JAL: u32 = 0b110_1111;
const OP_JALR: u32 = 0b110_0111;
const OP_BRANCH: u32 = 0b110_0011;
const OP_LOAD: u32 = 0b000_0011;
const OP_STORE: u32 = 0b010_0011;
const OP_IMM: u32 = 0b001_0011;
const OP_OP: u32 = 0b011_0011;

fn r_type(name: &'static str, f3: u32, f7: u32, op: AluOp) -> InstrSpec {
    InstrSpec {
        name,
        opcode: OP_OP,
        funct3: Some(f3),
        funct7: Some(f7),
        rs2_field: None,
        ctrl: Ctrl::alu_r(op),
    }
}

fn i_type(name: &'static str, f3: u32, op: AluOp) -> InstrSpec {
    InstrSpec {
        name,
        opcode: OP_IMM,
        funct3: Some(f3),
        funct7: None,
        rs2_field: None,
        ctrl: Ctrl::alu_i(op, ImmFormat::I),
    }
}

fn shift_imm(name: &'static str, f3: u32, f7: u32, op: AluOp) -> InstrSpec {
    InstrSpec {
        name,
        opcode: OP_IMM,
        funct3: Some(f3),
        funct7: Some(f7),
        rs2_field: None,
        ctrl: Ctrl::alu_i(op, ImmFormat::I),
    }
}

fn unary(name: &'static str, f3: u32, f7: u32, rs2: u32, op: AluOp) -> InstrSpec {
    InstrSpec {
        name,
        opcode: OP_IMM,
        funct3: Some(f3),
        funct7: Some(f7),
        rs2_field: Some(rs2),
        ctrl: Ctrl::alu_r(op), // operand b unused; register form avoids imm
    }
}

/// The instruction table for a given extension set.
#[must_use]
pub fn instruction_table(ext: Extensions) -> Vec<InstrSpec> {
    let mut t = vec![
        InstrSpec {
            name: "LUI",
            opcode: OP_LUI,
            funct3: None,
            funct7: None,
            rs2_field: None,
            ctrl: Ctrl::alu_i(AluOp::PassB, ImmFormat::U),
        },
        InstrSpec {
            name: "AUIPC",
            opcode: OP_AUIPC,
            funct3: None,
            funct7: None,
            rs2_field: None,
            ctrl: Ctrl {
                alu_src1_pc: true,
                ..Ctrl::alu_i(AluOp::Add, ImmFormat::U)
            },
        },
        InstrSpec {
            name: "JAL",
            opcode: OP_JAL,
            funct3: None,
            funct7: None,
            rs2_field: None,
            ctrl: Ctrl {
                imm: ImmFormat::J,
                reg_write: true,
                wb: WbSource::PcPlus4,
                jump: true,
                ..Ctrl::nop()
            },
        },
        InstrSpec {
            name: "JALR",
            opcode: OP_JALR,
            funct3: Some(0),
            funct7: None,
            rs2_field: None,
            ctrl: Ctrl {
                imm: ImmFormat::I,
                reg_write: true,
                wb: WbSource::PcPlus4,
                jump: true,
                jalr: true,
                ..Ctrl::nop()
            },
        },
        InstrSpec {
            name: "BEQ",
            opcode: OP_BRANCH,
            funct3: Some(0b000),
            funct7: None,
            rs2_field: None,
            ctrl: Ctrl::branch(BranchCond::Eq),
        },
        InstrSpec {
            name: "BNE",
            opcode: OP_BRANCH,
            funct3: Some(0b001),
            funct7: None,
            rs2_field: None,
            ctrl: Ctrl::branch(BranchCond::Ne),
        },
        InstrSpec {
            name: "BLT",
            opcode: OP_BRANCH,
            funct3: Some(0b100),
            funct7: None,
            rs2_field: None,
            ctrl: Ctrl::branch(BranchCond::Lt),
        },
        InstrSpec {
            name: "BGE",
            opcode: OP_BRANCH,
            funct3: Some(0b101),
            funct7: None,
            rs2_field: None,
            ctrl: Ctrl::branch(BranchCond::Ge),
        },
        InstrSpec {
            name: "BLTU",
            opcode: OP_BRANCH,
            funct3: Some(0b110),
            funct7: None,
            rs2_field: None,
            ctrl: Ctrl::branch(BranchCond::Ltu),
        },
        InstrSpec {
            name: "BGEU",
            opcode: OP_BRANCH,
            funct3: Some(0b111),
            funct7: None,
            rs2_field: None,
            ctrl: Ctrl::branch(BranchCond::Geu),
        },
        InstrSpec {
            name: "LB",
            opcode: OP_LOAD,
            funct3: Some(0b000),
            funct7: None,
            rs2_field: None,
            ctrl: Ctrl::load(MaskMode::Byte, true),
        },
        InstrSpec {
            name: "LH",
            opcode: OP_LOAD,
            funct3: Some(0b001),
            funct7: None,
            rs2_field: None,
            ctrl: Ctrl::load(MaskMode::Half, true),
        },
        InstrSpec {
            name: "LW",
            opcode: OP_LOAD,
            funct3: Some(0b010),
            funct7: None,
            rs2_field: None,
            ctrl: Ctrl::load(MaskMode::Word, false),
        },
        InstrSpec {
            name: "LBU",
            opcode: OP_LOAD,
            funct3: Some(0b100),
            funct7: None,
            rs2_field: None,
            ctrl: Ctrl::load(MaskMode::Byte, false),
        },
        InstrSpec {
            name: "LHU",
            opcode: OP_LOAD,
            funct3: Some(0b101),
            funct7: None,
            rs2_field: None,
            ctrl: Ctrl::load(MaskMode::Half, false),
        },
        InstrSpec {
            name: "SB",
            opcode: OP_STORE,
            funct3: Some(0b000),
            funct7: None,
            rs2_field: None,
            ctrl: Ctrl::store(MaskMode::Byte),
        },
        InstrSpec {
            name: "SH",
            opcode: OP_STORE,
            funct3: Some(0b001),
            funct7: None,
            rs2_field: None,
            ctrl: Ctrl::store(MaskMode::Half),
        },
        InstrSpec {
            name: "SW",
            opcode: OP_STORE,
            funct3: Some(0b010),
            funct7: None,
            rs2_field: None,
            ctrl: Ctrl::store(MaskMode::Word),
        },
        i_type("ADDI", 0b000, AluOp::Add),
        i_type("SLTI", 0b010, AluOp::Slt),
        i_type("SLTIU", 0b011, AluOp::Sltu),
        i_type("XORI", 0b100, AluOp::Xor),
        i_type("ORI", 0b110, AluOp::Or),
        i_type("ANDI", 0b111, AluOp::And),
        shift_imm("SLLI", 0b001, 0b000_0000, AluOp::Sll),
        shift_imm("SRLI", 0b101, 0b000_0000, AluOp::Srl),
        shift_imm("SRAI", 0b101, 0b010_0000, AluOp::Sra),
        r_type("ADD", 0b000, 0b000_0000, AluOp::Add),
        r_type("SUB", 0b000, 0b010_0000, AluOp::Sub),
        r_type("SLL", 0b001, 0b000_0000, AluOp::Sll),
        r_type("SLT", 0b010, 0b000_0000, AluOp::Slt),
        r_type("SLTU", 0b011, 0b000_0000, AluOp::Sltu),
        r_type("XOR", 0b100, 0b000_0000, AluOp::Xor),
        r_type("SRL", 0b101, 0b000_0000, AluOp::Srl),
        r_type("SRA", 0b101, 0b010_0000, AluOp::Sra),
        r_type("OR", 0b110, 0b000_0000, AluOp::Or),
        r_type("AND", 0b111, 0b000_0000, AluOp::And),
    ];
    if ext.zbkb {
        t.extend([
            r_type("ROL", 0b001, 0b011_0000, AluOp::Rol),
            r_type("ROR", 0b101, 0b011_0000, AluOp::Ror),
            shift_imm("RORI", 0b101, 0b011_0000, AluOp::Ror),
            r_type("ANDN", 0b111, 0b010_0000, AluOp::Andn),
            r_type("ORN", 0b110, 0b010_0000, AluOp::Orn),
            r_type("XNOR", 0b100, 0b010_0000, AluOp::Xnor),
            r_type("PACK", 0b100, 0b000_0100, AluOp::Pack),
            r_type("PACKH", 0b111, 0b000_0100, AluOp::Packh),
            unary("BREV8", 0b101, 0b011_0100, 0b00111, AluOp::Brev8),
            unary("REV8", 0b101, 0b011_0100, 0b11000, AluOp::Rev8),
            unary("ZIP", 0b001, 0b000_0100, 0b01111, AluOp::Zip),
            unary("UNZIP", 0b101, 0b000_0100, 0b01111, AluOp::Unzip),
        ]);
    }
    if ext.zbkc {
        t.extend([
            r_type("CLMUL", 0b001, 0b000_0101, AluOp::Clmul),
            r_type("CLMULH", 0b011, 0b000_0101, AluOp::Clmulh),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_bitvec::BitVec;
    use owl_oyster::{Design, Expr, Interpreter};
    use std::collections::HashMap;

    #[test]
    fn base_table_has_37_instructions() {
        assert_eq!(instruction_table(Extensions::BASE).len(), 37);
        assert_eq!(instruction_table(Extensions::ZBKB).len(), 49);
        assert_eq!(instruction_table(Extensions::ZBKC).len(), 51);
    }

    #[test]
    fn encodings_are_unique() {
        let t = instruction_table(Extensions::ZBKC);
        for (i, a) in t.iter().enumerate() {
            for b in &t[i + 1..] {
                let clash = a.opcode == b.opcode
                    && (a.funct3.is_none() || b.funct3.is_none() || a.funct3 == b.funct3)
                    && (a.funct7.is_none() || b.funct7.is_none() || a.funct7 == b.funct7)
                    && (a.rs2_field.is_none()
                        || b.rs2_field.is_none()
                        || a.rs2_field == b.rs2_field);
                assert!(!clash, "{} and {} overlap", a.name, b.name);
            }
        }
    }

    fn run2(f: impl Fn(Expr, Expr) -> Expr, x: u64, y: u64) -> u64 {
        let mut d = Design::new("t");
        d.input("x", 32).input("y", 32).output("o", 32);
        d.assign("o", f(Expr::var("x"), Expr::var("y")));
        d.check().expect("valid");
        let mut sim = Interpreter::new(&d).unwrap();
        let inputs: HashMap<String, BitVec> = [
            ("x".to_string(), BitVec::from_u64(32, x)),
            ("y".to_string(), BitVec::from_u64(32, y)),
        ]
        .into();
        sim.step(&inputs).unwrap().outputs["o"].to_u64().unwrap()
    }

    #[test]
    fn alu_ops_match_native_semantics() {
        let cases: &[(u64, u64)] =
            &[(5, 3), (0xFFFF_FFFF, 1), (0x8000_0000, 31), (0x1234_5678, 0x9ABC_DEF0)];
        for &(x, y) in cases {
            let (xi, yi) = (x as u32, y as u32);
            let sh = (y & 31) as u32;
            assert_eq!(run2(|a, b| AluOp::Add.apply(&a, &b), x, y), u64::from(xi.wrapping_add(yi)));
            assert_eq!(run2(|a, b| AluOp::Sub.apply(&a, &b), x, y), u64::from(xi.wrapping_sub(yi)));
            assert_eq!(run2(|a, b| AluOp::Sll.apply(&a, &b), x, y), u64::from(xi << sh));
            assert_eq!(run2(|a, b| AluOp::Srl.apply(&a, &b), x, y), u64::from(xi >> sh));
            assert_eq!(
                run2(|a, b| AluOp::Sra.apply(&a, &b), x, y),
                u64::from(((xi as i32) >> sh) as u32)
            );
            assert_eq!(
                run2(|a, b| AluOp::Slt.apply(&a, &b), x, y),
                u64::from((xi as i32) < (yi as i32))
            );
            assert_eq!(run2(|a, b| AluOp::Sltu.apply(&a, &b), x, y), u64::from(xi < yi));
            assert_eq!(run2(|a, b| AluOp::PassB.apply(&a, &b), x, y), y);
        }
    }

    #[test]
    fn immediate_decoding() {
        // ADDI x1, x0, -1 => imm = 0xFFF (I-format, sign extended)
        let instr = 0xFFF0_0093u64;
        let got = run2(|a, _| ImmFormat::I.decode(&a), instr, 0);
        assert_eq!(got, 0xFFFF_FFFF);
        // LUI x1, 0xDEADB => imm = 0xDEADB000 (U-format)
        let instr = 0xDEAD_B0B7u64;
        assert_eq!(run2(|a, _| ImmFormat::U.decode(&a), instr, 0), 0xDEAD_B000);
    }

    #[test]
    fn load_store_round_trip() {
        for (mask, width) in
            [(MaskMode::Byte, 8u32), (MaskMode::Half, 16), (MaskMode::Word, 32)]
        {
            let offsets: &[u64] = match mask {
                MaskMode::Byte => &[0, 1, 2, 3],
                MaskMode::Half => &[0, 2],
                MaskMode::Word => &[0],
            };
            for &off in offsets {
                let old = 0x1122_3344u64;
                let val = 0xAABB_CCDDu64;
                let merged = run2(
                    |o, v| {
                        store_merge(mask, &o, &v, &Expr::const_u64(2, off))
                    },
                    old,
                    val,
                );
                let loaded = run2(
                    |w, _| load_value(mask, false, &w, &Expr::const_u64(2, off)),
                    merged,
                    0,
                );
                let expect = val & ((1u64 << width) - 1).min(0xFFFF_FFFF);
                assert_eq!(loaded, expect, "{mask:?} at offset {off}");
            }
        }
    }

    #[test]
    fn signed_loads_extend() {
        let word = 0x0000_8080u64;
        let sb = run2(
            |w, _| load_value(MaskMode::Byte, true, &w, &Expr::const_u64(2, 0)),
            word,
            0,
        );
        assert_eq!(sb, 0xFFFF_FF80);
        let sh = run2(
            |w, _| load_value(MaskMode::Half, true, &w, &Expr::const_u64(2, 0)),
            word,
            0,
        );
        assert_eq!(sh, 0xFFFF_8080);
    }

    #[test]
    fn branch_conditions() {
        let a = 0xFFFF_FFFFu64; // -1 signed
        let b = 1u64;
        assert_eq!(run2(|x, y| BranchCond::Eq.apply(&x, &y).zext(32), a, b), 0);
        assert_eq!(run2(|x, y| BranchCond::Ne.apply(&x, &y).zext(32), a, b), 1);
        assert_eq!(run2(|x, y| BranchCond::Lt.apply(&x, &y).zext(32), a, b), 1); // -1 < 1
        assert_eq!(run2(|x, y| BranchCond::Ltu.apply(&x, &y).zext(32), a, b), 0); // max > 1
        assert_eq!(run2(|x, y| BranchCond::Geu.apply(&x, &y).zext(32), a, b), 1);
        assert_eq!(run2(|x, y| BranchCond::Never.apply(&x, &y).zext(32), a, b), 0);
    }
}
