//! The ILA specification for the RISC-V cores, generated from the
//! instruction table.
//!
//! Architectural state: `pc` (32 bits), `GPR` (32 × 32-bit registers,
//! with x0 hardwired to zero via masked reads and conditional writes),
//! `mem` (word-addressed data memory) and `imem` (word-addressed,
//! read-only instruction memory). Each instruction's decode matches the
//! fetched word's opcode/funct fields; updates are built from the same
//! generic semantic functions the datapath uses.

use super::isa::{
    instruction_table, load_value, store_merge, BranchCond, Extensions, WbSource,
};
use owl_ila::{Ila, Instr, SpecExpr};

/// Data/instruction memory address width (word addressed; byte address
/// bits \[31:2\]).
pub const MEM_ADDR_WIDTH: u32 = 30;

/// Builds the specification for the given extension set.
#[must_use]
pub fn rv32i_spec(ext: Extensions) -> Ila {
    spec_from_table(format!("{ext}"), &instruction_table(ext), false)
}

/// Builds a specification from an explicit instruction table, optionally
/// adding the bespoke `CMOV` instruction (used by the constant-time
/// cryptography core, §4.2): `rd' = if rs2 != 0 { rs1 } else { rd }`.
#[must_use]
pub fn spec_from_table(
    name: impl Into<String>,
    table: &[super::isa::InstrSpec],
    include_cmov: bool,
) -> Ila {
    let mut ila = Ila::new(name);
    let pc = ila.new_bv_state("pc", 32);
    ila.new_mem_state("GPR", 5, 32);
    ila.new_mem_state("mem", MEM_ADDR_WIDTH, 32);
    ila.new_mem_state("imem", MEM_ADDR_WIDTH, 32);

    let instr = SpecExpr::load("imem", pc.clone().extract(31, 2));
    let opcode = instr.clone().extract(6, 0);
    let rd = instr.clone().extract(11, 7);
    let funct3 = instr.clone().extract(14, 12);
    let rs1 = instr.clone().extract(19, 15);
    let rs2 = instr.clone().extract(24, 20);
    let funct7 = instr.clone().extract(31, 25);

    let read_gpr = |field: &SpecExpr| {
        SpecExpr::ite(
            field.clone().eq(SpecExpr::const_u64(5, 0)),
            SpecExpr::const_u64(32, 0),
            SpecExpr::load("GPR", field.clone()),
        )
    };
    let rs1_val = read_gpr(&rs1);
    let rs2_val = read_gpr(&rs2);
    let pc_plus4 = pc.clone().add(SpecExpr::const_u64(32, 4));

    for entry in table.iter().copied() {
        let mut decode = opcode.clone().eq(SpecExpr::const_u64(7, u64::from(entry.opcode)));
        if let Some(f3) = entry.funct3 {
            decode = decode.and(funct3.clone().eq(SpecExpr::const_u64(3, u64::from(f3))));
        }
        if let Some(f7) = entry.funct7 {
            decode = decode.and(funct7.clone().eq(SpecExpr::const_u64(7, u64::from(f7))));
        }
        if let Some(r2) = entry.rs2_field {
            decode = decode.and(rs2.clone().eq(SpecExpr::const_u64(5, u64::from(r2))));
        }

        let ctrl = entry.ctrl;
        let imm = ctrl.imm.decode(&instr);
        let alu_a = if ctrl.alu_src1_pc { pc.clone() } else { rs1_val.clone() };
        let alu_b = if ctrl.alu_imm { imm.clone() } else { rs2_val.clone() };
        let alu_out = ctrl.alu_op.apply(&alu_a, &alu_b);
        let word_addr = alu_out.clone().extract(31, 2);
        let addr_lo = alu_out.clone().extract(1, 0);

        let mut i = Instr::new(entry.name);
        i.set_decode(decode);

        // Program counter.
        let next_pc = if ctrl.jump {
            if ctrl.jalr {
                rs1_val
                    .clone()
                    .add(imm.clone())
                    .and(SpecExpr::const_u64(32, 0xFFFF_FFFE))
            } else {
                pc.clone().add(imm.clone())
            }
        } else if ctrl.branch != BranchCond::Never {
            SpecExpr::ite(
                ctrl.branch.apply(&rs1_val, &rs2_val),
                pc.clone().add(imm.clone()),
                pc_plus4.clone(),
            )
        } else {
            pc_plus4.clone()
        };
        i.set_update("pc", next_pc);

        // Register file.
        if ctrl.reg_write {
            let value = match ctrl.wb {
                WbSource::Alu => alu_out.clone(),
                WbSource::PcPlus4 => pc_plus4.clone(),
                WbSource::Mem => {
                    let word = SpecExpr::load("mem", word_addr.clone());
                    load_value(ctrl.mask, ctrl.mem_sign, &word, &addr_lo)
                }
            };
            i.set_store_when("GPR", rd.clone(), value, rd.clone().neq(SpecExpr::const_u64(5, 0)));
        }

        // Data memory.
        if ctrl.mem_write {
            let old = SpecExpr::load("mem", word_addr.clone());
            let merged = store_merge(ctrl.mask, &old, &rs2_val, &addr_lo);
            i.set_store("mem", word_addr, merged);
        }

        ila.add_instr(i);
    }

    if include_cmov {
        let mut cmov = Instr::new("CMOV");
        cmov.set_decode(
            opcode
                .clone()
                .eq(SpecExpr::const_u64(7, u64::from(crate::asm::CMOV_OPCODE)))
                .and(funct3.clone().eq(SpecExpr::const_u64(3, 0)))
                .and(funct7.clone().eq(SpecExpr::const_u64(7, 0))),
        );
        cmov.set_update("pc", pc_plus4.clone());
        let rd_val = read_gpr(&rd);
        let moved = SpecExpr::ite(
            rs2_val.clone().neq(SpecExpr::const_u64(32, 0)),
            rs1_val.clone(),
            rd_val,
        );
        cmov.set_store_when("GPR", rd.clone(), moved, rd.clone().neq(SpecExpr::const_u64(5, 0)));
        ila.add_instr(cmov);
    }
    ila
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_bitvec::BitVec;
    use owl_ila::golden::{GoldenModel, SpecState};

    fn encode_r(opcode: u32, rd: u32, f3: u32, rs1: u32, rs2: u32, f7: u32) -> u64 {
        u64::from(
            opcode | (rd << 7) | (f3 << 12) | (rs1 << 15) | (rs2 << 20) | (f7 << 25),
        )
    }

    fn encode_i(opcode: u32, rd: u32, f3: u32, rs1: u32, imm12: u32) -> u64 {
        u64::from(opcode | (rd << 7) | (f3 << 12) | (rs1 << 15) | ((imm12 & 0xFFF) << 20))
    }

    fn fresh_state(ila: &Ila) -> SpecState {
        SpecState::zeroed(ila)
    }

    fn load_instr(state: &mut SpecState, word_addr: u64, encoding: u64) {
        state
            .mems
            .get_mut("imem")
            .unwrap()
            .write(word_addr, BitVec::from_u64(32, encoding));
    }

    #[test]
    fn spec_checks_for_all_variants() {
        for ext in [Extensions::BASE, Extensions::ZBKB, Extensions::ZBKC] {
            let ila = rv32i_spec(ext);
            ila.check().unwrap_or_else(|e| panic!("{ext}: {e}"));
        }
        assert_eq!(rv32i_spec(Extensions::BASE).instrs().len(), 37);
        assert_eq!(rv32i_spec(Extensions::ZBKC).instrs().len(), 51);
    }

    #[test]
    fn golden_addi_and_add() {
        let ila = rv32i_spec(Extensions::BASE);
        let model = GoldenModel::new(&ila).unwrap();
        let mut st = fresh_state(&ila);
        // addi x1, x0, 42 ; addi x2, x1, -2 ; add x3, x1, x2
        load_instr(&mut st, 0, encode_i(0b001_0011, 1, 0, 0, 42));
        load_instr(&mut st, 1, encode_i(0b001_0011, 2, 0, 1, 0xFFE));
        load_instr(&mut st, 2, encode_r(0b011_0011, 3, 0, 1, 2, 0));
        assert_eq!(model.step(&mut st).unwrap().as_deref(), Some("ADDI"));
        assert_eq!(st.bvs["pc"].to_u64(), Some(4));
        assert_eq!(model.step(&mut st).unwrap().as_deref(), Some("ADDI"));
        assert_eq!(model.step(&mut st).unwrap().as_deref(), Some("ADD"));
        assert_eq!(st.mems["GPR"].read(1).to_u64(), Some(42));
        assert_eq!(st.mems["GPR"].read(2).to_u64(), Some(40));
        assert_eq!(st.mems["GPR"].read(3).to_u64(), Some(82));
    }

    #[test]
    fn golden_x0_is_never_written() {
        let ila = rv32i_spec(Extensions::BASE);
        let model = GoldenModel::new(&ila).unwrap();
        let mut st = fresh_state(&ila);
        load_instr(&mut st, 0, encode_i(0b001_0011, 0, 0, 0, 99)); // addi x0, x0, 99
        load_instr(&mut st, 1, encode_r(0b011_0011, 1, 0, 0, 0, 0)); // add x1, x0, x0
        model.step(&mut st).unwrap();
        model.step(&mut st).unwrap();
        assert_eq!(st.mems["GPR"].read(0).to_u64(), Some(0));
        assert_eq!(st.mems["GPR"].read(1).to_u64(), Some(0));
    }

    #[test]
    fn golden_branches() {
        let ila = rv32i_spec(Extensions::BASE);
        let model = GoldenModel::new(&ila).unwrap();
        let mut st = fresh_state(&ila);
        // beq x0, x0, +8 (taken): opcode 1100011, f3=0, imm=8
        // imm[12|10:5] -> funct7 field, imm[4:1|11] -> rd field.
        // The zero fields are spelled out to document the encoding.
        #[allow(clippy::identity_op, clippy::erasing_op)]
        let beq_taken = 0b110_0011u64 | (0b01000 << 7) | (0 << 12) | (0 << 15) | (0 << 20);
        load_instr(&mut st, 0, beq_taken);
        assert_eq!(model.step(&mut st).unwrap().as_deref(), Some("BEQ"));
        assert_eq!(st.bvs["pc"].to_u64(), Some(8));
        // bne x0, x0 (not taken) at pc=8.
        let bne = 0b110_0011u64 | (0b01000 << 7) | (0b001 << 12);
        load_instr(&mut st, 2, bne);
        assert_eq!(model.step(&mut st).unwrap().as_deref(), Some("BNE"));
        assert_eq!(st.bvs["pc"].to_u64(), Some(12));
    }

    #[test]
    fn golden_loads_and_stores() {
        let ila = rv32i_spec(Extensions::BASE);
        let model = GoldenModel::new(&ila).unwrap();
        let mut st = fresh_state(&ila);
        st.mems.get_mut("GPR").unwrap().write(1, BitVec::from_u64(32, 0x100)); // base
        st.mems.get_mut("GPR").unwrap().write(2, BitVec::from_u64(32, 0xDEAD_BEEF));
        // sw x2, 4(x1) ; lw x3, 4(x1) ; lb x4, 4(x1) ; lbu x5, 7(x1)
        let sw = 0b010_0011u64 | (0b100 << 7) | (0b010 << 12) | (1 << 15) | (2 << 20);
        load_instr(&mut st, 0, sw);
        load_instr(&mut st, 1, encode_i(0b000_0011, 3, 0b010, 1, 4)); // lw
        load_instr(&mut st, 2, encode_i(0b000_0011, 4, 0b000, 1, 4)); // lb
        load_instr(&mut st, 3, encode_i(0b000_0011, 5, 0b100, 1, 7)); // lbu
        assert_eq!(model.step(&mut st).unwrap().as_deref(), Some("SW"));
        assert_eq!(st.mems["mem"].read(0x104 >> 2).to_u64(), Some(0xDEAD_BEEF));
        assert_eq!(model.step(&mut st).unwrap().as_deref(), Some("LW"));
        assert_eq!(st.mems["GPR"].read(3).to_u64(), Some(0xDEAD_BEEF));
        assert_eq!(model.step(&mut st).unwrap().as_deref(), Some("LB"));
        assert_eq!(st.mems["GPR"].read(4).to_u64(), Some(0xFFFF_FFEF)); // sext(0xEF)
        assert_eq!(model.step(&mut st).unwrap().as_deref(), Some("LBU"));
        assert_eq!(st.mems["GPR"].read(5).to_u64(), Some(0xDE));
    }

    #[test]
    fn golden_jal_jalr() {
        let ila = rv32i_spec(Extensions::BASE);
        let model = GoldenModel::new(&ila).unwrap();
        let mut st = fresh_state(&ila);
        // jal x1, +8: opcode 1101111; imm[20|10:1|11|19:12] in [31:12].
        let jal = 0b110_1111u64 | (1 << 7) | (0x008 << 20); // imm10:1 = 4 -> +8
        load_instr(&mut st, 0, jal);
        assert_eq!(model.step(&mut st).unwrap().as_deref(), Some("JAL"));
        assert_eq!(st.bvs["pc"].to_u64(), Some(8));
        assert_eq!(st.mems["GPR"].read(1).to_u64(), Some(4)); // link = pc + 4
        // jalr x2, 3(x1): target = (4 + 3) & ~1 = 6... use aligned: 8(x1)=12.
        let jalr = encode_i(0b110_0111, 2, 0, 1, 8);
        load_instr(&mut st, 2, jalr);
        assert_eq!(model.step(&mut st).unwrap().as_deref(), Some("JALR"));
        assert_eq!(st.bvs["pc"].to_u64(), Some(12));
        assert_eq!(st.mems["GPR"].read(2).to_u64(), Some(12)); // link = 8 + 4
    }

    #[test]
    fn golden_zbkb_rev8() {
        let ila = rv32i_spec(Extensions::ZBKB);
        let model = GoldenModel::new(&ila).unwrap();
        let mut st = fresh_state(&ila);
        st.mems.get_mut("GPR").unwrap().write(1, BitVec::from_u64(32, 0x1234_5678));
        // rev8 x2, x1: opcode 0010011 f3=101 f7=0110100 rs2=11000
        let rev8 = encode_r(0b001_0011, 2, 0b101, 1, 0b11000, 0b011_0100);
        load_instr(&mut st, 0, rev8);
        assert_eq!(model.step(&mut st).unwrap().as_deref(), Some("REV8"));
        assert_eq!(st.mems["GPR"].read(2).to_u64(), Some(0x7856_3412));
    }

    #[test]
    fn golden_zbkc_clmul() {
        let ila = rv32i_spec(Extensions::ZBKC);
        let model = GoldenModel::new(&ila).unwrap();
        let mut st = fresh_state(&ila);
        st.mems.get_mut("GPR").unwrap().write(1, BitVec::from_u64(32, 0b110));
        st.mems.get_mut("GPR").unwrap().write(2, BitVec::from_u64(32, 0b11));
        let clmul = encode_r(0b011_0011, 3, 0b001, 1, 2, 0b000_0101);
        load_instr(&mut st, 0, clmul);
        assert_eq!(model.step(&mut st).unwrap().as_deref(), Some("CLMUL"));
        assert_eq!(st.mems["GPR"].read(3).to_u64(), Some(0b1010));
    }
}
