//! The embedded-class RISC-V core of paper §4.1.
//!
//! The RV32I base integer instruction set (37 instructions — `ecall`,
//! `ebreak` and `fence` excluded, as in the paper), optionally extended
//! with the Zbkb bit-manipulation-for-cryptography set (12 instructions)
//! and the Zbkc carry-less multiply set (2 instructions).
//!
//! The module is organized around the control–datapath divide:
//!
//! - [`isa`] holds the instruction table and the *shared semantics* —
//!   generic functions over [`owl_hdl::bitops::SynthExpr`] that both the
//!   ILA specification and the datapath instantiate;
//! - [`spec`] generates the ILA specification from the table;
//! - [`datapath`] builds the datapath body once, parameterized over its
//!   control signals — holes for the sketches (single-cycle and
//!   two-stage), handwritten decode expressions for the Table 2
//!   reference.
//!
//! Memory model: instruction and data memories are separate word-addressed
//! 30-bit-address blocks (the paper's `i_mem`/`d_mem` split); byte and
//! halfword accesses perform word read-modify-write with the access size
//! and sign handled by (synthesized) control.

pub mod datapath;
pub mod isa;
pub mod spec;

pub use isa::{instruction_table, AluOp, BranchCond, Extensions, ImmFormat, InstrSpec, WbSource};

use crate::CaseStudy;
use owl_core::{AbstractionFn, DatapathKind};

/// The abstraction function for the single-cycle core (paper §4.1.1):
/// everything reads and writes at time step 1.
#[must_use]
pub fn alpha_single_cycle() -> AbstractionFn {
    let mut a = AbstractionFn::new(1);
    a.map("pc", "pc", DatapathKind::Register, [1], [1])
        .map("GPR", "rf", DatapathKind::Memory, [1], [1])
        .map("mem", "d_mem", DatapathKind::Memory, [1], [1])
        .map("imem", "i_mem", DatapathKind::Memory, [1], []);
    a
}

/// The abstraction function for the two-stage core (paper §4.1.2): the
/// program counter and register file are written in stage 2, data memory
/// lives entirely in stage 2.
#[must_use]
pub fn alpha_two_stage() -> AbstractionFn {
    let mut a = AbstractionFn::new(2);
    a.map("pc", "pc", DatapathKind::Register, [1], [2])
        .map("GPR", "rf", DatapathKind::Memory, [1], [2])
        .map("mem", "d_mem", DatapathKind::Memory, [2], [2])
        .map("imem", "i_mem", DatapathKind::Memory, [1], []);
    a
}

/// The single-cycle case study for the given extension set.
#[must_use]
pub fn single_cycle(ext: Extensions) -> CaseStudy {
    CaseStudy {
        name: format!("Single-Cycle Core / {ext}"),
        sketch: datapath::single_cycle_sketch(ext),
        spec: spec::rv32i_spec(ext),
        alpha: alpha_single_cycle(),
    }
}

/// The two-stage pipelined case study for the given extension set.
#[must_use]
pub fn two_stage(ext: Extensions) -> CaseStudy {
    CaseStudy {
        name: format!("Two-Stage Core / {ext}"),
        sketch: datapath::two_stage_sketch(ext),
        spec: spec::rv32i_spec(ext),
        alpha: alpha_two_stage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rv32i::isa::{BranchCond, WbSource};
    use owl_core::{complete_design, control_union, verify_design, SynthesisSession};
    use owl_smt::TermManager;

    /// Synthesis must recover the instruction table's "answer key" for
    /// the semantically forced control signals.
    #[cfg_attr(debug_assertions, ignore = "synthesizes a full core; run in release")]
    #[test]
    fn synthesized_controls_match_the_answer_key() {
        let ext = Extensions::BASE;
        let cs = single_cycle(ext);
        let mut mgr = TermManager::new();
        let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
            .run_with(&mut mgr)
                .and_then(|out| out.require_complete())
                .expect("synthesis succeeds");
        let table = instruction_table(ext);
        for (sol, entry) in out.solutions.iter().zip(&table) {
            assert_eq!(sol.instr, entry.name);
            let ctrl = entry.ctrl;
            // Forced 1-bit signals.
            assert_eq!(
                sol.holes["reg_write"].to_u64(),
                Some(u64::from(ctrl.reg_write)),
                "{}: reg_write",
                entry.name
            );
            assert_eq!(
                sol.holes["mem_write"].to_u64(),
                Some(u64::from(ctrl.mem_write)),
                "{}: mem_write",
                entry.name
            );
            assert_eq!(
                sol.holes["jump"].to_u64(),
                Some(u64::from(ctrl.jump)),
                "{}: jump",
                entry.name
            );
            // Branches must select their exact comparison; non-branches
            // must select something that never fires (0 or out of range).
            if ctrl.branch != BranchCond::Never {
                assert_eq!(
                    sol.holes["bcond_sel"].to_u64(),
                    Some(ctrl.branch.code()),
                    "{}: bcond_sel",
                    entry.name
                );
            } else if !ctrl.jump {
                let sel = sol.holes["bcond_sel"].to_u64().unwrap();
                assert!(sel == 0 || sel == 7, "{}: bcond_sel = {sel} could fire", entry.name);
            }
            // Loads and stores need the right access size and (for
            // loads) write-back source.
            if ctrl.mem_write || (ctrl.reg_write && ctrl.wb == WbSource::Mem) {
                let got = sol.holes["mask_mode"].to_u64().unwrap();
                // The size mux only distinguishes 0 (byte) and 1 (half);
                // 2 and 3 both select the word path, so word-sized
                // accesses may solve to either.
                let ok = match ctrl.mask.code() {
                    2 => got >= 2,
                    want => got == want,
                };
                assert!(ok, "{}: mask_mode = {got}", entry.name);
            }
            if ctrl.reg_write {
                let got = sol.holes["wb_sel"].to_u64().unwrap();
                // Selects 0 and 3 both route the ALU result.
                let ok = match ctrl.wb {
                    WbSource::Alu => got == 0 || got == 3,
                    other => got == other.code(),
                };
                assert!(ok, "{}: wb_sel = {got}", entry.name);
            }
        }
    }

    #[cfg_attr(debug_assertions, ignore = "synthesizes a full core; run in release")]
    #[test]
    fn two_stage_zbkc_synthesizes_and_verifies() {
        let cs = two_stage(Extensions::ZBKC);
        let mut mgr = TermManager::new();
        let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
            .run_with(&mut mgr)
                .and_then(|out| out.require_complete())
                .expect("synthesis succeeds");
        assert_eq!(out.solutions.len(), 51);
        let union = control_union(&cs.sketch, &cs.spec, &cs.alpha, &out.solutions).unwrap();
        let complete = complete_design(&cs.sketch, &union);
        let mut mgr2 = TermManager::new();
        verify_design(&mut mgr2, &complete, &cs.spec, &cs.alpha, None)
            .expect("completed two-stage design verifies");
    }

    #[cfg_attr(debug_assertions, ignore = "verifies a full core; run in release")]
    #[test]
    fn handwritten_reference_verifies_for_all_variants() {
        for ext in [Extensions::BASE, Extensions::ZBKB, Extensions::ZBKC] {
            let cs = single_cycle(ext);
            let reference = datapath::reference_single_cycle(ext);
            let mut mgr = TermManager::new();
            verify_design(&mut mgr, &reference, &cs.spec, &cs.alpha, None)
                .unwrap_or_else(|e| panic!("{ext}: {e}"));
        }
    }

    #[test]
    fn control_widths_match_sketch_holes() {
        let sketch = datapath::single_cycle_sketch(Extensions::ZBKC);
        for (name, width) in datapath::CONTROL_WIDTHS {
            let decl = sketch.decl(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(decl.width, width, "{name}");
        }
        assert_eq!(sketch.hole_names().len(), datapath::CONTROL_WIDTHS.len());
    }
}
