//! The RISC-V datapaths: a single-cycle core and a two-stage pipeline,
//! built from one shared fetch/decode/execute stage.
//!
//! Control signals are injected: [`single_cycle_sketch`] and
//! [`two_stage_sketch`] declare them as holes (the paper's `??`), while
//! [`reference_single_cycle`] wires in handwritten decode logic — the
//! Table 2 reference implementation.

use super::isa::{
    load_value, store_merge, AluOp, BranchCond, Extensions, ImmFormat, MaskMode, WbSource,
};
use owl_hdl::{Module, Wire};
use owl_oyster::Design;

/// The control signals the datapath consumes (paper §4.1.1's underlined
/// signals).
#[derive(Debug, Clone)]
pub struct ControlSignals {
    /// ALU function select (5 bits).
    pub alu_op: Wire,
    /// ALU operand 2 from the immediate.
    pub alu_imm: Wire,
    /// ALU operand 1 from the program counter.
    pub alu_src1_pc: Wire,
    /// Immediate format select (3 bits).
    pub imm_sel: Wire,
    /// Register file write enable.
    pub reg_write: Wire,
    /// Write-back source select (2 bits).
    pub wb_sel: Wire,
    /// Data memory read enable.
    pub mem_read: Wire,
    /// Data memory write enable.
    pub mem_write: Wire,
    /// Memory access size (2 bits).
    pub mask_mode: Wire,
    /// Sign-extend sub-word loads.
    pub mem_sign: Wire,
    /// Unconditional pc redirect.
    pub jump: Wire,
    /// Redirect target is the JALR form.
    pub jalr_sel: Wire,
    /// Branch condition select (3 bits).
    pub bcond_sel: Wire,
}

/// Widths of each control signal, in declaration order.
pub const CONTROL_WIDTHS: [(&str, u32); 13] = [
    ("alu_op", 5),
    ("alu_imm", 1),
    ("alu_src1_pc", 1),
    ("imm_sel", 3),
    ("reg_write", 1),
    ("wb_sel", 2),
    ("mem_read", 1),
    ("mem_write", 1),
    ("mask_mode", 2),
    ("mem_sign", 1),
    ("jump", 1),
    ("jalr_sel", 1),
    ("bcond_sel", 3),
];

fn hole_controls(m: &mut Module) -> ControlSignals {
    let mut get = |name: &str, w: u32| m.hole(name, w);
    ControlSignals {
        alu_op: get("alu_op", 5),
        alu_imm: get("alu_imm", 1),
        alu_src1_pc: get("alu_src1_pc", 1),
        imm_sel: get("imm_sel", 3),
        reg_write: get("reg_write", 1),
        wb_sel: get("wb_sel", 2),
        mem_read: get("mem_read", 1),
        mem_write: get("mem_write", 1),
        mask_mode: get("mask_mode", 2),
        mem_sign: get("mem_sign", 1),
        jump: get("jump", 1),
        jalr_sel: get("jalr_sel", 1),
        bcond_sel: get("bcond_sel", 3),
    }
}

/// The decoded instruction fields plus the values stage 1 produces.
struct Stage1 {
    rd: Wire,
    rs2_val: Wire,
    alu_out: Wire,
    pc_plus4: Wire,
    pc_next: Wire,
}

/// Builds fetch, decode and execute; shared by both cores.
fn fetch_decode_execute(m: &mut Module, ext: Extensions, c: &ControlSignals) -> Stage1 {
    let pc = Wire::from_expr(owl_oyster::Expr::var("pc"));
    let instr = m.assign("instr", m.read("i_mem", pc.bits(31, 2)));
    let rd = m.assign("rd", instr.bits(11, 7));
    let rs1 = m.assign("rs1", instr.bits(19, 15));
    let rs2f = m.assign("rs2f", instr.bits(24, 20));

    // Register reads (x0 reads as zero).
    let zero32 = Wire::lit(32, 0);
    let rf_rs1 = m.read("rf", rs1.clone());
    let rf_rs2 = m.read("rf", rs2f.clone());
    let rs1_val =
        m.assign("rs1_val", rs1.eq(Wire::lit(5, 0)).select(zero32.clone(), rf_rs1));
    let rs2_val =
        m.assign("rs2_val", rs2f.eq(Wire::lit(5, 0)).select(zero32, rf_rs2));

    // Immediate decode mux.
    let formats = [ImmFormat::I, ImmFormat::S, ImmFormat::B, ImmFormat::U, ImmFormat::J];
    let mut imm = formats[4].decode(&instr);
    for fmt in formats[..4].iter().rev() {
        imm = c
            .imm_sel
            .eq(Wire::lit(3, fmt.code()))
            .select(fmt.decode(&instr), imm);
    }
    let imm = m.assign("imm", imm);

    // ALU.
    let alu_a = c.alu_src1_pc.select(pc.clone(), rs1_val.clone());
    let alu_b = c.alu_imm.select(imm.clone(), rs2_val.clone());
    let ops = AluOp::available(ext);
    let results: Vec<Wire> = ops
        .iter()
        .map(|op| m.assign(&format!("alu_{}", op.tag()), op.apply(&alu_a, &alu_b)))
        .collect();
    let (last, rest) = ops.split_last().expect("nonempty op list");
    let _ = last;
    let mut alu = results.last().expect("nonempty").clone();
    for (op, result) in rest.iter().zip(&results).rev() {
        alu = c
            .alu_op
            .eq(Wire::lit(5, op.code()))
            .select(result.clone(), alu);
    }
    let alu_out = m.assign("alu_out", alu);

    // Branch / jump resolution.
    let conds = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Ge,
        BranchCond::Ltu,
        BranchCond::Geu,
    ];
    let mut bcond = BranchCond::Never.apply(&rs1_val, &rs2_val);
    for cond in conds.iter().rev() {
        bcond = c
            .bcond_sel
            .eq(Wire::lit(3, cond.code()))
            .select(cond.apply(&rs1_val, &rs2_val), bcond);
    }
    let taken = m.assign("taken", c.jump.clone() | bcond);
    let jalr_target =
        (rs1_val.clone() + imm.clone()) & Wire::lit(32, 0xFFFF_FFFE);
    let target = c.jalr_sel.select(jalr_target, pc.clone() + imm);
    let pc_plus4 = m.assign("pc_plus4", pc + Wire::lit(32, 4));
    let pc_next = m.assign("pc_next", taken.select(target, pc_plus4.clone()));

    Stage1 { rd, rs2_val, alu_out, pc_plus4, pc_next }
}

/// Builds the memory-access and write-back logic against the given
/// (possibly pipelined) operands; shared by both cores.
#[allow(clippy::too_many_arguments)]
fn mem_writeback(
    m: &mut Module,
    prefix: &str,
    rd: &Wire,
    rs2_val: &Wire,
    alu_out: &Wire,
    pc_plus4: &Wire,
    c: &ControlSignals,
) {
    let word_addr = alu_out.bits(31, 2);
    let addr_lo = alu_out.bits(1, 0);
    let word = m.assign(&format!("{prefix}mem_word"), m.read("d_mem", word_addr.clone()));

    // Load value: mux over access size and signedness.
    let variant = |mask: MaskMode, sign: bool| load_value(mask, sign, &word, &addr_lo);
    let byte_v = c
        .mem_sign
        .select(variant(MaskMode::Byte, true), variant(MaskMode::Byte, false));
    let half_v = c
        .mem_sign
        .select(variant(MaskMode::Half, true), variant(MaskMode::Half, false));
    let sized = c.mask_mode.eq(Wire::lit(2, MaskMode::Byte.code())).select(
        byte_v,
        c.mask_mode
            .eq(Wire::lit(2, MaskMode::Half.code()))
            .select(half_v, word.clone()),
    );
    let loadv = m.assign(
        &format!("{prefix}load_value"),
        c.mem_read.select(sized, Wire::lit(32, 0)),
    );

    // Write-back.
    let wb = c.wb_sel.eq(Wire::lit(2, WbSource::Mem.code())).select(
        loadv,
        c.wb_sel
            .eq(Wire::lit(2, WbSource::PcPlus4.code()))
            .select(pc_plus4.clone(), alu_out.clone()),
    );
    let wb = m.assign(&format!("{prefix}wb_data"), wb);
    let wr_en = c.reg_write.clone() & rd.ne(Wire::lit(5, 0));
    m.write("rf", rd.clone(), wb, wr_en);

    // Store merge.
    let merged = c.mask_mode.eq(Wire::lit(2, MaskMode::Byte.code())).select(
        store_merge(MaskMode::Byte, &word, rs2_val, &addr_lo),
        c.mask_mode.eq(Wire::lit(2, MaskMode::Half.code())).select(
            store_merge(MaskMode::Half, &word, rs2_val, &addr_lo),
            rs2_val.clone(),
        ),
    );
    let merged = m.assign(&format!("{prefix}store_data"), merged);
    m.write("d_mem", word_addr, merged, c.mem_write.clone());
}

fn declare_state(m: &mut Module) {
    m.register("pc", 32);
    m.memory("rf", 5, 32);
    m.memory("i_mem", 30, 32);
    m.memory("d_mem", 30, 32);
}

/// The single-cycle datapath sketch (paper §4.1.1): control as holes.
#[must_use]
pub fn single_cycle_sketch(ext: Extensions) -> Design {
    let mut m = Module::new(format!("rv32_single_{}", variant_tag(ext)));
    declare_state(&mut m);
    let c = hole_controls(&mut m);
    let s1 = fetch_decode_execute(&mut m, ext, &c);
    mem_writeback(&mut m, "", &s1.rd, &s1.rs2_val, &s1.alu_out, &s1.pc_plus4, &c);
    m.assign("pc", s1.pc_next);
    m.finish().expect("single-cycle sketch is well-formed")
}

/// The two-stage pipelined sketch (paper §4.1.2): stage 1 fetches,
/// decodes and executes; stage 2 accesses memory, writes back, and
/// commits the program counter.
#[must_use]
pub fn two_stage_sketch(ext: Extensions) -> Design {
    let mut m = Module::new(format!("rv32_two_stage_{}", variant_tag(ext)));
    declare_state(&mut m);
    let c = hole_controls(&mut m);
    let s1 = fetch_decode_execute(&mut m, ext, &c);

    // Pipeline registers between stage 1 and stage 2.
    let pipe = |m: &mut Module, name: &str, w: u32, v: Wire| {
        m.register(name, w);
        m.assign(name, v)
    };
    let s2_rd = pipe(&mut m, "s2_rd", 5, s1.rd);
    let s2_rs2 = pipe(&mut m, "s2_rs2_val", 32, s1.rs2_val);
    let s2_alu = pipe(&mut m, "s2_alu_out", 32, s1.alu_out);
    let s2_pc4 = pipe(&mut m, "s2_pc_plus4", 32, s1.pc_plus4);
    let s2_pc_next = pipe(&mut m, "s2_pc_next", 32, s1.pc_next);
    let s2c = ControlSignals {
        alu_op: c.alu_op.clone(), // consumed in stage 1 only
        alu_imm: c.alu_imm.clone(),
        alu_src1_pc: c.alu_src1_pc.clone(),
        imm_sel: c.imm_sel.clone(),
        reg_write: pipe(&mut m, "s2_reg_write", 1, c.reg_write.clone()),
        wb_sel: pipe(&mut m, "s2_wb_sel", 2, c.wb_sel.clone()),
        mem_read: pipe(&mut m, "s2_mem_read", 1, c.mem_read.clone()),
        mem_write: pipe(&mut m, "s2_mem_write", 1, c.mem_write.clone()),
        mask_mode: pipe(&mut m, "s2_mask_mode", 2, c.mask_mode.clone()),
        mem_sign: pipe(&mut m, "s2_mem_sign", 1, c.mem_sign.clone()),
        jump: c.jump.clone(),
        jalr_sel: c.jalr_sel.clone(),
        bcond_sel: c.bcond_sel.clone(),
    };

    // Stage 2.
    mem_writeback(&mut m, "s2_", &s2_rd, &s2_rs2, &s2_alu, &s2_pc4, &s2c);
    m.assign("pc", s2_pc_next);
    m.finish().expect("two-stage sketch is well-formed")
}

/// The single-cycle core with handwritten control (the Table 2
/// reference implementation).
#[must_use]
pub fn reference_single_cycle(ext: Extensions) -> Design {
    let mut m = Module::new(format!("rv32_single_{}_ref", variant_tag(ext)));
    declare_state(&mut m);
    let c = reference_controls(&mut m, ext);
    let s1 = fetch_decode_execute(&mut m, ext, &c);
    mem_writeback(&mut m, "", &s1.rd, &s1.rs2_val, &s1.alu_out, &s1.pc_plus4, &c);
    m.assign("pc", s1.pc_next);
    m.finish().expect("reference core is well-formed")
}

/// Number of statements the reference control logic occupies (the
/// Table 2 "HDL Control Logic (Reference)" metric).
#[must_use]
pub fn reference_control_line_count(ext: Extensions) -> usize {
    let with_ctrl = reference_single_cycle(ext).stmts().len();
    // The datapath without any control assignments, measured by building
    // the sketch (holes add no statements) and ignoring its declarations.
    let without = single_cycle_sketch(ext).stmts().len();
    with_ctrl - without
}

fn variant_tag(ext: Extensions) -> &'static str {
    if ext.zbkc {
        "zbkc"
    } else if ext.zbkb {
        "zbkb"
    } else {
        "rv32i"
    }
}

/// Handwritten decode: the compact control a human would write, shared
/// per opcode class with funct-field disambiguation.
fn reference_controls(m: &mut Module, ext: Extensions) -> ControlSignals {
    // The fields must be recomputed here (the shared stage runs later and
    // defines its own wires); these feed only the control expressions.
    let pc = Wire::from_expr(owl_oyster::Expr::var("pc"));
    let cinstr = m.assign("c_instr", m.read("i_mem", pc.bits(31, 2)));
    let opcode = m.assign("c_opcode", cinstr.bits(6, 0));
    let funct3 = m.assign("c_funct3", cinstr.bits(14, 12));
    let funct7 = m.assign("c_funct7", cinstr.bits(31, 25));
    let crs2 = m.assign("c_rs2f", cinstr.bits(24, 20));

    let is = |code: u64| opcode.eq(Wire::lit(7, code));
    let is_lui = m.assign("is_lui", is(0b011_0111));
    let is_auipc = m.assign("is_auipc", is(0b001_0111));
    let is_jal = m.assign("is_jal", is(0b110_1111));
    let is_jalr = m.assign("is_jalr", is(0b110_0111));
    let is_branch = m.assign("is_branch", is(0b110_0011));
    let is_load = m.assign("is_load", is(0b000_0011));
    let is_store = m.assign("is_store", is(0b010_0011));
    let is_op = m.assign("is_op", is(0b011_0011));

    let f7 = |code: u64| funct7.eq(Wire::lit(7, code));
    let f3 = |code: u64| funct3.eq(Wire::lit(3, code));
    let alu = |op: AluOp| Wire::lit(5, op.code());

    // ALU function from funct3/funct7 for the OP/OP-IMM classes.
    let op000 = (is_op.clone() & f7(0b010_0000)).select(alu(AluOp::Sub), alu(AluOp::Add));
    let op001 = if ext.zbkb {
        let clmul = if ext.zbkc {
            (is_op.clone() & f7(0b000_0101)).select(alu(AluOp::Clmul), alu(AluOp::Sll))
        } else {
            alu(AluOp::Sll)
        };
        f7(0b011_0000).select(alu(AluOp::Rol), f7(0b000_0100).select(alu(AluOp::Zip), clmul))
    } else {
        alu(AluOp::Sll)
    };
    let op011 = if ext.zbkc {
        (is_op.clone() & f7(0b000_0101)).select(alu(AluOp::Clmulh), alu(AluOp::Sltu))
    } else {
        alu(AluOp::Sltu)
    };
    let op100 = if ext.zbkb {
        (is_op.clone() & f7(0b010_0000)).select(
            alu(AluOp::Xnor),
            (is_op.clone() & f7(0b000_0100)).select(alu(AluOp::Pack), alu(AluOp::Xor)),
        )
    } else {
        alu(AluOp::Xor)
    };
    let op101 = {
        let srl_like = if ext.zbkb {
            f7(0b011_0000).select(
                alu(AluOp::Ror),
                f7(0b011_0100).select(
                    crs2.eq(Wire::lit(5, 0b00111))
                        .select(alu(AluOp::Brev8), alu(AluOp::Rev8)),
                    f7(0b000_0100).select(alu(AluOp::Unzip), alu(AluOp::Srl)),
                ),
            )
        } else {
            alu(AluOp::Srl)
        };
        f7(0b010_0000).select(alu(AluOp::Sra), srl_like)
    };
    let op110 = if ext.zbkb {
        (is_op.clone() & f7(0b010_0000)).select(alu(AluOp::Orn), alu(AluOp::Or))
    } else {
        alu(AluOp::Or)
    };
    let op111 = if ext.zbkb {
        (is_op.clone() & f7(0b010_0000)).select(
            alu(AluOp::Andn),
            (is_op.clone() & f7(0b000_0100)).select(alu(AluOp::Packh), alu(AluOp::And)),
        )
    } else {
        alu(AluOp::And)
    };
    let by_f3 = f3(0).select(
        op000,
        f3(1).select(
            op001,
            f3(2).select(
                alu(AluOp::Slt),
                f3(3).select(op011, f3(4).select(op100, f3(5).select(op101, f3(6).select(op110, op111)))),
            ),
        ),
    );
    let mem_or_jump =
        is_load.clone() | is_store.clone() | is_jalr.clone() | is_auipc.clone() | is_jal.clone();
    let alu_op = m.assign(
        "ref_alu_op",
        is_lui
            .clone()
            .select(alu(AluOp::PassB), mem_or_jump.select(alu(AluOp::Add), by_f3)),
    );

    let alu_imm = m.assign("ref_alu_imm", !is_op.clone());
    let alu_src1_pc = m.assign("ref_alu_src1_pc", is_auipc.clone());
    let imm_sel = m.assign(
        "ref_imm_sel",
        is_store.clone().select(
            Wire::lit(3, ImmFormat::S.code()),
            is_branch.clone().select(
                Wire::lit(3, ImmFormat::B.code()),
                (is_lui.clone() | is_auipc).select(
                    Wire::lit(3, ImmFormat::U.code()),
                    is_jal
                        .clone()
                        .select(Wire::lit(3, ImmFormat::J.code()), Wire::lit(3, ImmFormat::I.code())),
                ),
            ),
        ),
    );
    let reg_write = m.assign("ref_reg_write", !(is_branch.clone() | is_store.clone()));
    let wb_sel = m.assign(
        "ref_wb_sel",
        is_load.clone().select(
            Wire::lit(2, WbSource::Mem.code()),
            (is_jal.clone() | is_jalr.clone())
                .select(Wire::lit(2, WbSource::PcPlus4.code()), Wire::lit(2, WbSource::Alu.code())),
        ),
    );
    let mem_read = m.assign("ref_mem_read", is_load.clone());
    let mem_write = m.assign("ref_mem_write", is_store);
    // LB/LH/LW and SB/SH/SW put the access size in funct3[1:0]; the sign
    // bit of loads is the complement of funct3[2].
    let mask_mode = m.assign("ref_mask_mode", funct3.bits(1, 0));
    let mem_sign = m.assign("ref_mem_sign", !funct3.bit(2));
    let jump = m.assign("ref_jump", is_jal | is_jalr.clone());
    let jalr_sel = m.assign("ref_jalr_sel", is_jalr);
    // Branch condition: funct3 0/1 map to Eq/Ne (codes 1/2), funct3
    // 4..=7 map to Lt/Ge/Ltu/Geu (codes 3..=6).
    let bcond_sel = m.assign(
        "ref_bcond_sel",
        is_branch.select(
            funct3
                .lt_u(Wire::lit(3, 2))
                .select(funct3.clone() + Wire::lit(3, 1), funct3.clone() - Wire::lit(3, 1)),
            Wire::lit(3, BranchCond::Never.code()),
        ),
    );

    ControlSignals {
        alu_op,
        alu_imm,
        alu_src1_pc,
        imm_sel,
        reg_write,
        wb_sel,
        mem_read,
        mem_write,
        mask_mode,
        mem_sign,
        jump,
        jalr_sel,
        bcond_sel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketches_are_well_formed_and_grow_with_extensions() {
        let base = single_cycle_sketch(Extensions::BASE);
        let zbkb = single_cycle_sketch(Extensions::ZBKB);
        let zbkc = single_cycle_sketch(Extensions::ZBKC);
        assert!(base.line_count() < zbkb.line_count());
        assert!(zbkb.line_count() < zbkc.line_count());
        assert_eq!(base.hole_names().len(), 13);

        let two = two_stage_sketch(Extensions::BASE);
        assert!(two.line_count() > base.line_count());
        assert!(two.decl("s2_alu_out").is_some());
    }

    #[test]
    fn reference_has_no_holes() {
        let r = reference_single_cycle(Extensions::ZBKC);
        assert!(r.hole_names().is_empty());
        assert!(reference_control_line_count(Extensions::BASE) > 10);
    }
}
