//! The FSM-controlled accumulator machine of paper §2.3.
//!
//! The specification has three instructions (`reset_instr`, `go_instr`,
//! `stop_instr`) predicated on the architectural `state` register; the
//! datapath sketch leaves the state encodings used by the conditional
//! update logic *and* the next-state value as holes (paper Fig. 3's
//! dotted transitions). Synthesis recovers the encodings and transitions.

use crate::CaseStudy;
use owl_core::{AbstractionFn, DatapathKind};
use owl_hdl::{Module, Wire};
use owl_ila::{Ila, Instr, SpecExpr};

/// Architectural state encodings fixed by the specification.
pub const STATE_RESET: u64 = 0;
/// See [`STATE_RESET`].
pub const STATE_GO: u64 = 1;
/// See [`STATE_RESET`].
pub const STATE_STOP: u64 = 2;

/// The ILA specification (paper §2.3's `CreateAccIla`).
#[must_use]
pub fn spec() -> Ila {
    let mut ila = Ila::new("acc_ila");
    let reset = ila.new_bv_input("reset", 1);
    let go = ila.new_bv_input("go", 1);
    let stop = ila.new_bv_input("stop", 1);
    let val = ila.new_bv_input("val", 2);
    let acc = ila.new_bv_state("acc", 8);
    let state = ila.new_bv_state("state", 2);
    let reset_c = SpecExpr::const_u64(2, STATE_RESET);
    let go_c = SpecExpr::const_u64(2, STATE_GO);
    let stop_c = SpecExpr::const_u64(2, STATE_STOP);
    let hi = SpecExpr::const_u64(1, 1);
    let lo = SpecExpr::const_u64(1, 0);

    let mut r = Instr::new("reset_instr");
    r.set_decode(state.clone().eq(stop_c.clone()).and(reset.eq(hi.clone())));
    r.set_update("acc", SpecExpr::const_u64(8, 0));
    r.set_update("state", reset_c.clone());
    ila.add_instr(r);

    let mut g = Instr::new("go_instr");
    let from_reset = state.clone().eq(reset_c).and(go.eq(hi.clone()));
    let continuing = state.clone().eq(go_c.clone()).and(stop.clone().eq(lo));
    g.set_decode(from_reset.or(continuing));
    g.set_update("acc", acc.clone().add(val.zext(8)));
    g.set_update("state", go_c.clone());
    ila.add_instr(g);

    let mut s = Instr::new("stop_instr");
    s.set_decode(state.eq(go_c).and(stop.eq(hi)));
    s.set_update("acc", acc);
    s.set_update("state", stop_c);
    ila.add_instr(s);
    ila
}

/// The datapath sketch (the paper's pseudocode):
///
/// ```text
/// state := ??
/// with state:
///   ?? -> acc := 0
///   ?? -> acc := acc + val
///   ?? -> acc := acc
/// out := acc
/// ```
///
/// Holes: the next-state value (`next_state`) and the three branch
/// encodings (`enc_reset`, `enc_go`, `enc_stop`).
#[must_use]
pub fn sketch() -> owl_oyster::Design {
    let mut m = Module::new("acc_machine");
    let _reset = m.input("reset", 1);
    let _go = m.input("go", 1);
    let _stop = m.input("stop", 1);
    let val = m.input("val", 2);
    let acc = m.register("acc", 8);
    let state = m.register("state", 2);
    m.output("out", 8);

    let next_state = m.hole("next_state", 2);
    let enc_reset = m.hole("enc_reset", 2);
    let enc_go = m.hole("enc_go", 2);
    let enc_stop = m.hole("enc_stop", 2);

    // Fig. 3 attaches the accumulator action to each transition's target
    // state (every edge into GO accumulates, every edge into RESET
    // clears), so the conditional update dispatches on the next-state
    // value being driven into the state register.
    let _ = state;
    let zero = Wire::lit(8, 0);
    let plus = acc.clone() + val.zext(8);
    let updated = next_state.eq(enc_reset).select(
        zero,
        next_state.eq(enc_go).select(plus, next_state.eq(enc_stop).select(acc.clone(), acc.clone())),
    );
    m.assign("acc", updated);
    m.assign("state", next_state);
    m.assign("out", acc);
    m.finish().expect("accumulator sketch is well-formed")
}

/// The abstraction function: single-cycle, direct state mapping.
#[must_use]
pub fn alpha() -> AbstractionFn {
    let mut a = AbstractionFn::new(1);
    a.map_input("reset", "reset")
        .map_input("go", "go")
        .map_input("stop", "stop")
        .map_input("val", "val")
        .map("acc", "acc", DatapathKind::Register, [1], [1])
        .map("state", "state", DatapathKind::Register, [1], [1]);
    a
}

/// The bundled case study.
#[must_use]
pub fn case_study() -> CaseStudy {
    CaseStudy { name: "Accumulator FSM".to_string(), sketch: sketch(), spec: spec(), alpha: alpha() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_bitvec::BitVec;
    use owl_core::{complete_design, control_union, verify_design, SynthesisSession};
    use owl_ila::golden::{GoldenModel, SpecState};
    use owl_oyster::Interpreter;
    use owl_smt::TermManager;
    use std::collections::HashMap;

    fn synthesized() -> (CaseStudy, owl_oyster::Design) {
        let cs = case_study();
        let mut mgr = TermManager::new();
        let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha).run_with(&mut mgr)
            .and_then(|out| out.require_complete())
            .expect("synthesis succeeds");
        let union = control_union(&cs.sketch, &cs.spec, &cs.alpha, &out.solutions).unwrap();
        let complete = complete_design(&cs.sketch, &union);
        (cs, complete)
    }

    #[test]
    fn accumulator_synthesizes_and_verifies() {
        let (cs, complete) = synthesized();
        let mut mgr = TermManager::new();
        verify_design(&mut mgr, &complete, &cs.spec, &cs.alpha, None)
            .expect("completed design verifies");
    }

    #[test]
    fn fsm_encodings_recovered() {
        let cs = case_study();
        let mut mgr = TermManager::new();
        let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha).run_with(&mut mgr)
            .and_then(|out| out.require_complete())
            .unwrap();
        // reset_instr drives next_state to RESET, and the clear branch's
        // encoding must match it so `acc := 0` fires.
        let reset = out.solutions.iter().find(|s| s.instr == "reset_instr").unwrap();
        assert_eq!(reset.holes["next_state"].to_u64(), Some(STATE_RESET));
        assert_eq!(reset.holes["enc_reset"], reset.holes["next_state"]);
        let go = out.solutions.iter().find(|s| s.instr == "go_instr").unwrap();
        assert_eq!(go.holes["next_state"].to_u64(), Some(STATE_GO));
        assert_eq!(go.holes["enc_go"], go.holes["next_state"]);
        let stop = out.solutions.iter().find(|s| s.instr == "stop_instr").unwrap();
        assert_eq!(stop.holes["next_state"].to_u64(), Some(STATE_STOP));
    }

    /// Differential test: drive the completed design and the golden model
    /// with the same deterministic input stream and compare `acc`.
    #[test]
    fn completed_design_matches_golden_model() {
        let (cs, complete) = synthesized();
        let model = GoldenModel::new(&cs.spec).unwrap();
        let mut spec_state = SpecState::zeroed(&cs.spec);
        let mut sim = Interpreter::new(&complete).unwrap();

        // A deterministic pseudo-random input schedule.
        let mut seed = 0x1234_5678u64;
        for _ in 0..200 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let reset = (seed >> 13) & 1;
            let go = (seed >> 27) & 1;
            let stop = (seed >> 41) & 1;
            let val = (seed >> 53) & 3;

            let inputs: HashMap<String, BitVec> = [
                ("reset".to_string(), BitVec::from_u64(1, reset)),
                ("go".to_string(), BitVec::from_u64(1, go)),
                ("stop".to_string(), BitVec::from_u64(1, stop)),
                ("val".to_string(), BitVec::from_u64(2, val)),
            ]
            .into();
            spec_state.inputs = inputs.clone();

            let fired = model.step(&mut spec_state).unwrap();
            sim.step(&inputs).unwrap();

            if fired.is_some() {
                assert_eq!(
                    sim.reg("acc").unwrap(),
                    &spec_state.bvs["acc"],
                    "acc diverged after {fired:?}"
                );
                assert_eq!(sim.reg("state").unwrap(), &spec_state.bvs["state"]);
            } else {
                // No instruction decoded: architectural state unchanged,
                // so resynchronize the hardware's (unspecified) behaviour
                // back to the spec for the next step.
                sim.set_reg("acc", spec_state.bvs["acc"].clone()).unwrap();
                sim.set_reg("state", spec_state.bvs["state"].clone()).unwrap();
            }
        }
    }
}
