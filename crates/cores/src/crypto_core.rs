//! The constant-time cryptography core of paper §4.2.
//!
//! A bespoke three-stage RISC-V core: the ISA drops every conditional
//! branch (eliminating data-dependent control flow and hence timing side
//! channels) and everything SHA-256 does not need, and adds a `CMOV`
//! conditional-move instruction so software can still select values
//! branchlessly.
//!
//! Microarchitecture: stage 1 fetches, stage 2 decodes/executes and
//! commits the program counter, stage 3 accesses memory and writes back.
//! Instructions issue every other cycle (an `issue` toggle), so there are
//! no hazards; the `instruction_valid` signal — assumed true at time step
//! 1 by the abstraction function, exactly the paper's assumption — marks
//! fetch slots that carry a real instruction.

use crate::asm::CMOV_OPCODE;
use crate::rv32i::isa::{instruction_table, AluOp, Extensions, ImmFormat, WbSource};
use crate::rv32i::spec::spec_from_table;
use crate::rv32i::InstrSpec;
use crate::CaseStudy;
use owl_core::{AbstractionFn, DatapathKind};
use owl_hdl::{Module, Wire};
use owl_ila::Ila;
use owl_oyster::Design;

/// The mnemonics retained from RV32I + Zbkb (everything SHA-256 needs and
/// nothing with data-dependent control flow).
pub const CMOV_ISA_NAMES: [&str; 22] = [
    "LUI", "AUIPC", "JAL", "ADDI", "SLTIU", "XORI", "ORI", "ANDI", "SLLI", "SRLI", "ADD",
    "SUB", "SLTU", "XOR", "SRL", "OR", "AND", "ROR", "RORI", "ANDN", "LW", "SW",
];

/// The instruction table of the CMOV ISA (without `CMOV` itself, which
/// the specification builder adds).
#[must_use]
pub fn cmov_table() -> Vec<InstrSpec> {
    let full = instruction_table(Extensions::ZBKB);
    CMOV_ISA_NAMES
        .iter()
        .map(|name| {
            *full
                .iter()
                .find(|e| e.name == *name)
                .unwrap_or_else(|| panic!("{name} missing from the ZBKB table"))
        })
        .collect()
}

/// The ILA specification of the CMOV ISA (23 instructions including
/// `CMOV`).
#[must_use]
pub fn spec() -> Ila {
    spec_from_table("cmov_isa", &cmov_table(), true)
}

/// The ALU operations the crypto core implements.
fn alu_ops() -> Vec<AluOp> {
    vec![
        AluOp::Add,
        AluOp::Sub,
        AluOp::Sll,
        AluOp::Sltu,
        AluOp::Xor,
        AluOp::Srl,
        AluOp::Or,
        AluOp::And,
        AluOp::PassB,
        AluOp::Ror,
        AluOp::Andn,
    ]
}

/// The crypto core's control signals (stage-2 consumption).
struct Controls {
    alu_op: Wire,
    alu_imm: Wire,
    alu_src1_pc: Wire,
    imm_sel: Wire,
    reg_write: Wire,
    wb_sel: Wire,
    mem_read: Wire,
    mem_write: Wire,
    jump: Wire,
    jalr_sel: Wire,
}

/// Write-back select code for the CMOV result (extends [`WbSource`]).
pub const WB_CMOV: u64 = 3;

fn build(m: &mut Module, c: Controls) {
    let pc = Wire::from_expr(owl_oyster::Expr::var("pc"));
    let issue = m.register("issue", 1);
    m.assign("instruction_valid", issue.clone());
    m.assign("issue", !issue.clone());

    // Stage 1: fetch.
    let s2_instr = m.register("s2_instr", 32);
    let s2_pc = m.register("s2_pc", 32);
    let s2_valid = m.register("s2_valid", 1);
    m.assign("s2_instr", m.read("i_mem", pc.bits(31, 2)));
    m.assign("s2_pc", pc.clone());
    m.assign("s2_valid", issue);

    // Stage 2: decode + execute + pc commit.
    let rd = m.assign("rd", s2_instr.bits(11, 7));
    let rs1 = m.assign("rs1", s2_instr.bits(19, 15));
    let rs2f = m.assign("rs2f", s2_instr.bits(24, 20));
    let zero32 = Wire::lit(32, 0);
    let gpr = |m: &mut Module, name: &str, field: &Wire| {
        let raw = m.read("rf", field.clone());
        m.assign(name, field.eq(Wire::lit(5, 0)).select(zero32.clone(), raw))
    };
    let rs1_val = gpr(m, "rs1_val", &rs1);
    let rs2_val = gpr(m, "rs2_val", &rs2f);
    let rd_val = gpr(m, "rd_val", &rd);

    let formats = [ImmFormat::I, ImmFormat::S, ImmFormat::B, ImmFormat::U, ImmFormat::J];
    let mut imm = formats[4].decode(&s2_instr);
    for fmt in formats[..4].iter().rev() {
        imm = c.imm_sel.eq(Wire::lit(3, fmt.code())).select(fmt.decode(&s2_instr), imm);
    }
    let imm = m.assign("imm", imm);

    let alu_a = c.alu_src1_pc.select(s2_pc.clone(), rs1_val.clone());
    let alu_b = c.alu_imm.select(imm.clone(), rs2_val.clone());
    let ops = alu_ops();
    let results: Vec<Wire> = ops
        .iter()
        .map(|op| m.assign(&format!("alu_{}", op.tag()), op.apply(&alu_a, &alu_b)))
        .collect();
    let mut alu = results.last().expect("nonempty").clone();
    for (op, result) in ops.split_last().expect("nonempty").1.iter().zip(&results).rev() {
        alu = c.alu_op.eq(Wire::lit(5, op.code())).select(result.clone(), alu);
    }
    let alu_out = m.assign("alu_out", alu);

    let cmov_val = m.assign(
        "cmov_val",
        rs2_val.ne(Wire::lit(32, 0)).select(rs1_val.clone(), rd_val),
    );
    let pc_plus4 = m.assign("pc_plus4", s2_pc.clone() + Wire::lit(32, 4));
    let jalr_target = (rs1_val + imm.clone()) & Wire::lit(32, 0xFFFF_FFFE);
    let target = c.jalr_sel.select(jalr_target, s2_pc + imm);
    let pc_next = m.assign("pc_next", c.jump.select(target, pc_plus4.clone()));
    m.assign("pc", s2_valid.clone().select(pc_next, pc));

    // Stage 2 -> 3 pipeline registers.
    let pipe = |m: &mut Module, name: &str, w: u32, v: Wire| {
        m.register(name, w);
        m.assign(name, v)
    };
    let s3_alu = pipe(m, "s3_alu", 32, alu_out);
    let s3_store = pipe(m, "s3_store_data", 32, rs2_val);
    let s3_rd = pipe(m, "s3_rd", 5, rd);
    let s3_pc4 = pipe(m, "s3_pc4", 32, pc_plus4);
    let s3_cmov = pipe(m, "s3_cmov", 32, cmov_val);
    let s3_valid = pipe(m, "s3_valid", 1, s2_valid);
    let s3_reg_write = pipe(m, "s3_reg_write", 1, c.reg_write);
    let s3_wb_sel = pipe(m, "s3_wb_sel", 2, c.wb_sel);
    let s3_mem_read = pipe(m, "s3_mem_read", 1, c.mem_read);
    let s3_mem_write = pipe(m, "s3_mem_write", 1, c.mem_write);

    // Stage 3: memory + write-back.
    let word = m.assign("mem_word", m.read("d_mem", s3_alu.bits(31, 2)));
    let loadv = m.assign("load_value", s3_mem_read.select(word, Wire::lit(32, 0)));
    let wb = s3_wb_sel.eq(Wire::lit(2, WbSource::Mem.code())).select(
        loadv,
        s3_wb_sel.eq(Wire::lit(2, WbSource::PcPlus4.code())).select(
            s3_pc4,
            s3_wb_sel.eq(Wire::lit(2, WB_CMOV)).select(s3_cmov, s3_alu.clone()),
        ),
    );
    let wb = m.assign("wb_data", wb);
    let wr_en = s3_reg_write & s3_valid.clone() & s3_rd.ne(Wire::lit(5, 0));
    m.write("rf", s3_rd, wb, wr_en);
    m.write("d_mem", s3_alu.bits(31, 2), s3_store, s3_mem_write & s3_valid);
}

fn declare_state(m: &mut Module) {
    m.register("pc", 32);
    m.memory("rf", 5, 32);
    m.memory("i_mem", 30, 32);
    m.memory("d_mem", 30, 32);
}

/// The datapath sketch: control logic as holes.
#[must_use]
pub fn sketch() -> Design {
    let mut m = Module::new("crypto_core");
    declare_state(&mut m);
    let c = Controls {
        alu_op: m.hole("alu_op", 5),
        alu_imm: m.hole("alu_imm", 1),
        alu_src1_pc: m.hole("alu_src1_pc", 1),
        imm_sel: m.hole("imm_sel", 3),
        reg_write: m.hole("reg_write", 1),
        wb_sel: m.hole("wb_sel", 2),
        mem_read: m.hole("mem_read", 1),
        mem_write: m.hole("mem_write", 1),
        jump: m.hole("jump", 1),
        jalr_sel: m.hole("jalr_sel", 1),
    };
    build(&mut m, c);
    m.finish().expect("crypto sketch is well-formed")
}

/// The handwritten-reference version of the core (for the §5.2 cycle
/// comparison between generated and handwritten control).
#[must_use]
pub fn reference() -> Design {
    let mut m = Module::new("crypto_core_ref");
    declare_state(&mut m);

    // Handwritten decode over the stage-2 instruction.
    let s2i = Wire::from_expr(owl_oyster::Expr::var("s2_instr"));
    let opcode = m.assign("c_opcode", s2i.bits(6, 0));
    let funct3 = m.assign("c_funct3", s2i.bits(14, 12));
    let funct7 = m.assign("c_funct7", s2i.bits(31, 25));
    let is = |code: u64| opcode.eq(Wire::lit(7, code));
    let is_lui = m.assign("is_lui", is(0b011_0111));
    let is_auipc = m.assign("is_auipc", is(0b001_0111));
    let is_jal = m.assign("is_jal", is(0b110_1111));
    let is_load = m.assign("is_load", is(0b000_0011));
    let is_store = m.assign("is_store", is(0b010_0011));
    let is_op = m.assign("is_op", is(0b011_0011));
    let is_cmov = m.assign("is_cmov", is(u64::from(CMOV_OPCODE)));
    let f3 = |code: u64| funct3.eq(Wire::lit(3, code));
    let f7 = |code: u64| funct7.eq(Wire::lit(7, code));
    let alu = |op: AluOp| Wire::lit(5, op.code());

    let by_f3 = f3(0).select(
        (is_op.clone() & f7(0b010_0000)).select(alu(AluOp::Sub), alu(AluOp::Add)),
        f3(1).select(
            alu(AluOp::Sll),
            f3(3).select(
                alu(AluOp::Sltu),
                f3(4).select(
                    alu(AluOp::Xor),
                    f3(5).select(
                        f7(0b011_0000).select(alu(AluOp::Ror), alu(AluOp::Srl)),
                        f3(6).select(
                            alu(AluOp::Or),
                            (is_op.clone() & f7(0b010_0000))
                                .select(alu(AluOp::Andn), alu(AluOp::And)),
                        ),
                    ),
                ),
            ),
        ),
    );
    let mem_like = is_load.clone() | is_store.clone() | is_auipc.clone() | is_jal.clone();
    let alu_op = m.assign(
        "ref_alu_op",
        is_lui.clone().select(alu(AluOp::PassB), mem_like.select(alu(AluOp::Add), by_f3)),
    );
    let alu_imm = m.assign("ref_alu_imm", !(is_op.clone() | is_cmov.clone()));
    let alu_src1_pc = m.assign("ref_alu_src1_pc", is_auipc.clone());
    let imm_sel = m.assign(
        "ref_imm_sel",
        is_store.clone().select(
            Wire::lit(3, ImmFormat::S.code()),
            (is_lui | is_auipc).select(
                Wire::lit(3, ImmFormat::U.code()),
                is_jal
                    .clone()
                    .select(Wire::lit(3, ImmFormat::J.code()), Wire::lit(3, ImmFormat::I.code())),
            ),
        ),
    );
    let reg_write = m.assign("ref_reg_write", !is_store.clone());
    let wb_sel = m.assign(
        "ref_wb_sel",
        is_load.clone().select(
            Wire::lit(2, WbSource::Mem.code()),
            is_jal.clone().select(
                Wire::lit(2, WbSource::PcPlus4.code()),
                is_cmov.select(Wire::lit(2, WB_CMOV), Wire::lit(2, WbSource::Alu.code())),
            ),
        ),
    );
    let mem_read = m.assign("ref_mem_read", is_load);
    let mem_write = m.assign("ref_mem_write", is_store);
    let jump = m.assign("ref_jump", is_jal);
    let jalr_sel = m.assign("ref_jalr_sel", Wire::lit(1, 0));

    let c = Controls {
        alu_op,
        alu_imm,
        alu_src1_pc,
        imm_sel,
        reg_write,
        wb_sel,
        mem_read,
        mem_write,
        jump,
        jalr_sel,
    };
    build(&mut m, c);
    m.finish().expect("crypto reference is well-formed")
}

/// The abstraction function (paper §4.2): the three-stage timing plus the
/// `instruction_valid` assumption.
#[must_use]
pub fn alpha() -> AbstractionFn {
    let mut a = AbstractionFn::new(3);
    a.map("pc", "pc", DatapathKind::Register, [1], [2])
        .map("GPR", "rf", DatapathKind::Memory, [2], [3])
        .map("mem", "d_mem", DatapathKind::Memory, [3], [3])
        .map("imem", "i_mem", DatapathKind::Memory, [1], [])
        .assume("instruction_valid", 1);
    a
}

/// The bundled case study.
#[must_use]
pub fn case_study() -> CaseStudy {
    CaseStudy {
        name: "Crypto Core / CMOV ISA".to_string(),
        sketch: sketch(),
        spec: spec(),
        alpha: alpha(),
    }
}

/// The decode binding for code generation: the core consumes control in
/// stage 2, where the fetched instruction lives in the `s2_instr`
/// pipeline register — so decode conditions over the architectural fetch
/// are rewritten onto that register.
#[must_use]
pub fn decode_bindings() -> Vec<owl_core::DecodeBinding> {
    use owl_ila::SpecExpr;
    let fetch = SpecExpr::load("imem", SpecExpr::var("pc").extract(31, 2));
    vec![(fetch, owl_oyster::Expr::var("s2_instr"))]
}

/// Loads `program` at address 0 and `data` words into data memory, runs
/// until the pc passes the last instruction (plus drain), and returns the
/// cycle count along with a data-memory reader.
///
/// # Panics
///
/// Panics if the design cannot be simulated or the program does not
/// terminate within `max_cycles`.
pub fn run_program<'d>(
    design: &'d Design,
    program: &[u32],
    data: &[(u64, u32)],
    max_cycles: u64,
) -> (u64, owl_oyster::Interpreter<'d>) {
    let mut sim = owl_oyster::Interpreter::new(design).expect("simulatable design");
    for (i, word) in program.iter().enumerate() {
        sim.poke_mem("i_mem", i as u64, owl_bitvec::BitVec::from_u64(32, u64::from(*word)))
            .expect("i_mem poke");
    }
    for &(addr, value) in data {
        sim.poke_mem("d_mem", addr, owl_bitvec::BitVec::from_u64(32, u64::from(value)))
            .expect("d_mem poke");
    }
    let end_pc = 4 * program.len() as u64;
    let inputs = std::collections::HashMap::new();
    let mut cycles = 0u64;
    loop {
        sim.step(&inputs).expect("step");
        cycles += 1;
        if sim.reg("pc").expect("pc").to_u64() == Some(end_pc) {
            break;
        }
        assert!(cycles < max_cycles, "program did not finish within {max_cycles} cycles");
    }
    // Drain the pipeline: two more cycles complete any in-flight
    // write-back. The fetched garbage after the end is harmless as long
    // as the memory there is zero (not a valid instruction).
    sim.step(&inputs).expect("step");
    sim.step(&inputs).expect("step");
    (cycles + 2, sim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{Asm, Program};
    use owl_core::{complete_design, verify_design, SynthesisSession};
    use owl_smt::TermManager;

    fn completed() -> (CaseStudy, Design) {
        let cs = case_study();
        let mut mgr = TermManager::new();
        let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha).run_with(&mut mgr)
            .and_then(|out| out.require_complete())
            .expect("synthesis succeeds");
        let union = owl_core::control_union_with(
            &cs.sketch,
            &cs.spec,
            &cs.alpha,
            &out.solutions,
            &decode_bindings(),
        )
        .unwrap();
        let complete = complete_design(&cs.sketch, &union);
        (cs, complete)
    }

    #[test]
    fn crypto_core_synthesizes_and_verifies() {
        let (cs, complete) = completed();
        let mut mgr = TermManager::new();
        verify_design(&mut mgr, &complete, &cs.spec, &cs.alpha, None)
            .expect("completed design verifies");
    }

    #[test]
    fn reference_verifies_against_spec() {
        let cs = case_study();
        let mut mgr = TermManager::new();
        verify_design(&mut mgr, &reference(), &cs.spec, &cs.alpha, None)
            .expect("reference verifies");
    }

    #[test]
    fn simulated_program_runs_on_both_cores() {
        let (_, complete) = completed();
        let refd = reference();
        let mut p = Program::new();
        p.li(1, 100); // x1 = 100
        p.li(2, 23); // x2 = 23
        p.push(Asm::Add { rd: 3, rs1: 1, rs2: 2 }); // x3 = 123
        p.push(Asm::Sltu { rd: 4, rs1: 2, rs2: 1 }); // x4 = 1
        p.push(Asm::Cmov { rd: 5, rs1: 3, rs2: 4 }); // x5 = x3 (cond true)
        p.push(Asm::Cmov { rd: 6, rs1: 3, rs2: 0 }); // x6 unchanged (0)
        p.li(7, 0x40); // address 0x40
        p.push(Asm::Sw { rs2: 5, rs1: 7, offset: 0 });
        p.push(Asm::Lw { rd: 8, rs1: 7, offset: 0 });
        p.push(Asm::Rori { rd: 9, rs1: 8, shamt: 8 });
        let code = p.encode();
        let (gen_cycles, gen_sim) = run_program(&complete, &code, &[], 1000);
        let (ref_cycles, ref_sim) = run_program(&refd, &code, &[], 1000);
        assert_eq!(gen_cycles, ref_cycles, "generated and handwritten cycle counts differ");
        for (reg, expect) in
            [(3u64, 123u64), (4, 1), (5, 123), (6, 0), (8, 123), (9, u64::from(123u32.rotate_right(8)))]
        {
            assert_eq!(
                gen_sim.mem("rf").unwrap().read(reg).to_u64(),
                Some(expect),
                "x{reg} (generated)"
            );
            assert_eq!(
                ref_sim.mem("rf").unwrap().read(reg).to_u64(),
                Some(expect),
                "x{reg} (reference)"
            );
        }
    }

    #[test]
    fn jal_redirects_without_executing_skipped_code() {
        let (_, complete) = completed();
        let mut p = Program::new();
        p.li(1, 7); // x1 = 7
        p.push(Asm::Jal { rd: 2, offset: 12 }); // skip the next two
        p.li(1, 99); // (skipped)
        p.nop(); // (skipped)
        p.push(Asm::Addi { rd: 3, rs1: 1, imm: 1 }); // x3 = 8
        let code = p.encode();
        let (_, sim) = run_program(&complete, &code, &[], 1000);
        assert_eq!(sim.mem("rf").unwrap().read(1).to_u64(), Some(7));
        assert_eq!(sim.mem("rf").unwrap().read(3).to_u64(), Some(8));
        // Link register holds the return address.
        assert_eq!(sim.mem("rf").unwrap().read(2).to_u64(), Some(4 + 4));
    }
}
