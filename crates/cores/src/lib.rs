//! The paper's case studies, built on the OWL toolchain.
//!
//! Each case study bundles the three synthesis inputs — an ILA
//! specification, a datapath sketch with holes, and an abstraction
//! function — plus, where the evaluation needs one, a handwritten
//! reference implementation of the control logic:
//!
//! - [`alu_machine`]: the three-stage pipelined ALU machine of §2.2;
//! - [`accumulator`]: the FSM-controlled accumulator of §2.3;
//! - [`rv32i`]: the embedded-class RISC-V core of §4.1 (RV32I base plus
//!   the Zbkb/Zbkc cryptography extensions; single-cycle and two-stage
//!   datapaths; handwritten reference control);
//! - [`crypto_core`]: the three-stage constant-time cryptography core of
//!   §4.2 (branch-free CMOV ISA);
//! - [`aes`]: the AES-128 accelerator of §4.3 (FSM-style control);
//! - [`asm`]: an assembler for the RISC-V subsets used here; and
//! - [`sha256`]: the constant-time SHA-256 program of §5.2 plus a pure
//!   reference implementation for checking digests.

pub mod accumulator;
pub mod aes;
pub mod alu_machine;
pub mod asm;
pub mod crypto_core;
pub mod rv32i;
pub mod sha256;

/// A bundled case study: everything control logic synthesis needs.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// Human-readable name (Table 1's "Design / Variant").
    pub name: String,
    /// The datapath sketch (with holes).
    pub sketch: owl_oyster::Design,
    /// The architectural specification.
    pub spec: owl_ila::Ila,
    /// The abstraction function.
    pub alpha: owl_core::AbstractionFn,
}
