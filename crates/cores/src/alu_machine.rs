//! The three-stage pipelined ALU machine of paper §2.2.
//!
//! Four register-to-register ALU operations (ADD, SUB, AND, XOR) over a
//! four-entry register file. The datapath pipelines: stage 1 reads the
//! operands, stage 2 computes, stage 3 writes back. Control logic
//! synthesis fills the ALU-operation select and the write enable.

use crate::CaseStudy;
use owl_core::{AbstractionFn, DatapathKind};
use owl_hdl::Module;
use owl_ila::{Ila, Instr, SpecExpr};

/// ALU opcode assignments used by the specification (2-bit `op` input).
pub const OP_ADD: u64 = 1;
/// See [`OP_ADD`].
pub const OP_SUB: u64 = 2;
/// See [`OP_ADD`].
pub const OP_AND: u64 = 3;
/// See [`OP_ADD`].
pub const OP_XOR: u64 = 0;

/// The ILA specification (paper §2.2's `CreateAluIla`, extended with the
/// "other ALU operations" it elides).
#[must_use]
pub fn spec() -> Ila {
    let mut ila = Ila::new("alu_ila");
    let op = ila.new_bv_input("op", 2);
    let dest = ila.new_bv_input("dest", 2);
    let src1 = ila.new_bv_input("src1", 2);
    let src2 = ila.new_bv_input("src2", 2);
    ila.new_mem_state("regs", 2, 8);
    let rs1_val = SpecExpr::load("regs", src1);
    let rs2_val = SpecExpr::load("regs", src2);

    for (name, code, res) in [
        ("ADD", OP_ADD, rs1_val.clone().add(rs2_val.clone())),
        ("SUB", OP_SUB, rs1_val.clone().sub(rs2_val.clone())),
        ("AND", OP_AND, rs1_val.clone().and(rs2_val.clone())),
        ("XOR", OP_XOR, rs1_val.clone().xor(rs2_val.clone())),
    ] {
        let mut instr = Instr::new(name);
        instr.set_decode(op.clone().eq(SpecExpr::const_u64(2, code)));
        instr.set_store("regs", dest.clone(), res);
        ila.add_instr(instr);
    }
    ila
}

/// The three-stage datapath sketch (paper Fig. 2). Holes: `alu_sel`
/// (which function the ALU applies) and `wr_en` (register file write
/// enable).
#[must_use]
pub fn sketch() -> owl_oyster::Design {
    let mut m = Module::new("alu_pipeline");
    let _op = m.input("op", 2);
    let dest = m.input("dest", 2);
    let src1 = m.input("src1", 2);
    let src2 = m.input("src2", 2);
    m.memory("regfile", 2, 8);

    let alu_sel = m.hole("alu_sel", 2);
    let wr_en = m.hole("wr_en", 1);

    // Stage 1: operand fetch into pipeline registers.
    let pipe_a = m.register("pipe_a", 8);
    let pipe_b = m.register("pipe_b", 8);
    let a = m.read("regfile", src1);
    let b = m.read("regfile", src2);
    m.assign("pipe_a", a);
    m.assign("pipe_b", b);

    // Stage 2: ALU into the result pipeline register.
    let pipe_res = m.register("pipe_res", 8);
    let sum = pipe_a.clone() + pipe_b.clone();
    let diff = pipe_a.clone() - pipe_b.clone();
    let conj = pipe_a.clone() & pipe_b.clone();
    let xor = pipe_a ^ pipe_b;
    let alu_out = alu_sel
        .eq(owl_hdl::Wire::lit(2, 0))
        .select(sum, alu_sel.eq(owl_hdl::Wire::lit(2, 1)).select(diff, alu_sel.eq(owl_hdl::Wire::lit(2, 2)).select(conj, xor)));
    m.assign("pipe_res", alu_out);

    // Stage 3: write back.
    m.write("regfile", dest, pipe_res, wr_en);

    m.finish().expect("alu sketch is well-formed")
}

/// The abstraction function of paper §3.2's example: all inputs read at
/// time 1, the register file read at time 1 and written at time 3, three
/// evaluated cycles.
#[must_use]
pub fn alpha() -> AbstractionFn {
    let mut a = AbstractionFn::new(3);
    a.map_input("op", "op")
        .map_input("dest", "dest")
        .map_input("src1", "src1")
        .map_input("src2", "src2")
        .map("regs", "regfile", DatapathKind::Memory, [1], [3]);
    a
}

/// The bundled case study.
#[must_use]
pub fn case_study() -> CaseStudy {
    CaseStudy { name: "ALU machine".to_string(), sketch: sketch(), spec: spec(), alpha: alpha() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_core::{complete_design, control_union, verify_design, SynthesisSession};
    use owl_smt::TermManager;

    #[test]
    fn alu_machine_synthesizes_and_verifies() {
        let cs = case_study();
        let mut mgr = TermManager::new();
        let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha).run_with(&mut mgr)
            .and_then(|out| out.require_complete())
            .expect("synthesis succeeds");
        assert_eq!(out.solutions.len(), 4);
        // Every instruction writes back.
        for sol in &out.solutions {
            assert_eq!(sol.holes["wr_en"].to_u64(), Some(1), "{}", sol.instr);
        }
        // The four ALU selects are distinct.
        let sels: std::collections::HashSet<u64> = out
            .solutions
            .iter()
            .map(|s| s.holes["alu_sel"].to_u64().unwrap())
            .collect();
        assert_eq!(sels.len(), 4);

        // Union, complete, and independently verify.
        let union = control_union(&cs.sketch, &cs.spec, &cs.alpha, &out.solutions).unwrap();
        let complete = complete_design(&cs.sketch, &union);
        let mut mgr2 = TermManager::new();
        verify_design(&mut mgr2, &complete, &cs.spec, &cs.alpha, None)
            .expect("completed design verifies");
    }

    #[test]
    fn sketch_reports_size() {
        let cs = case_study();
        assert!(cs.sketch.line_count() > 10);
        assert_eq!(cs.sketch.hole_names(), vec!["alu_sel", "wr_en"]);
    }
}
