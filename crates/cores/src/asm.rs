//! A small assembler for the RISC-V subsets used by the case studies,
//! including the bespoke `CMOV` instruction of the constant-time
//! cryptography core (paper §4.2).

/// One assembly instruction. Registers are 0..=31; immediates are the
/// architectural ranges (checked at encode time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Asm {
    Lui { rd: u32, imm20: u32 },
    Auipc { rd: u32, imm20: u32 },
    Jal { rd: u32, offset: i32 },
    Jalr { rd: u32, rs1: u32, offset: i32 },
    Beq { rs1: u32, rs2: u32, offset: i32 },
    Bne { rs1: u32, rs2: u32, offset: i32 },
    Blt { rs1: u32, rs2: u32, offset: i32 },
    Bge { rs1: u32, rs2: u32, offset: i32 },
    Bltu { rs1: u32, rs2: u32, offset: i32 },
    Bgeu { rs1: u32, rs2: u32, offset: i32 },
    Lb { rd: u32, rs1: u32, offset: i32 },
    Lh { rd: u32, rs1: u32, offset: i32 },
    Lw { rd: u32, rs1: u32, offset: i32 },
    Lbu { rd: u32, rs1: u32, offset: i32 },
    Lhu { rd: u32, rs1: u32, offset: i32 },
    Sb { rs2: u32, rs1: u32, offset: i32 },
    Sh { rs2: u32, rs1: u32, offset: i32 },
    Sw { rs2: u32, rs1: u32, offset: i32 },
    Addi { rd: u32, rs1: u32, imm: i32 },
    Slti { rd: u32, rs1: u32, imm: i32 },
    Sltiu { rd: u32, rs1: u32, imm: i32 },
    Xori { rd: u32, rs1: u32, imm: i32 },
    Ori { rd: u32, rs1: u32, imm: i32 },
    Andi { rd: u32, rs1: u32, imm: i32 },
    Slli { rd: u32, rs1: u32, shamt: u32 },
    Srli { rd: u32, rs1: u32, shamt: u32 },
    Srai { rd: u32, rs1: u32, shamt: u32 },
    Add { rd: u32, rs1: u32, rs2: u32 },
    Sub { rd: u32, rs1: u32, rs2: u32 },
    Sll { rd: u32, rs1: u32, rs2: u32 },
    Slt { rd: u32, rs1: u32, rs2: u32 },
    Sltu { rd: u32, rs1: u32, rs2: u32 },
    Xor { rd: u32, rs1: u32, rs2: u32 },
    Srl { rd: u32, rs1: u32, rs2: u32 },
    Sra { rd: u32, rs1: u32, rs2: u32 },
    Or { rd: u32, rs1: u32, rs2: u32 },
    And { rd: u32, rs1: u32, rs2: u32 },
    // Zbkb (subset used by the cores).
    Rol { rd: u32, rs1: u32, rs2: u32 },
    Ror { rd: u32, rs1: u32, rs2: u32 },
    Rori { rd: u32, rs1: u32, shamt: u32 },
    Andn { rd: u32, rs1: u32, rs2: u32 },
    // The bespoke conditional move: `rd = if rs2 != 0 { rs1 } else { rd }`.
    Cmov { rd: u32, rs1: u32, rs2: u32 },
}

/// The custom opcode used by `CMOV` (RISC-V custom-0 space).
pub const CMOV_OPCODE: u32 = 0b000_1011;

fn r_enc(opcode: u32, rd: u32, f3: u32, rs1: u32, rs2: u32, f7: u32) -> u32 {
    assert!(rd < 32 && rs1 < 32 && rs2 < 32, "register out of range");
    opcode | (rd << 7) | (f3 << 12) | (rs1 << 15) | (rs2 << 20) | (f7 << 25)
}

fn i_enc(opcode: u32, rd: u32, f3: u32, rs1: u32, imm: i32) -> u32 {
    assert!(rd < 32 && rs1 < 32, "register out of range");
    assert!((-2048..=2047).contains(&imm), "I-immediate {imm} out of range");
    opcode | (rd << 7) | (f3 << 12) | (rs1 << 15) | (((imm as u32) & 0xFFF) << 20)
}

fn s_enc(opcode: u32, f3: u32, rs1: u32, rs2: u32, imm: i32) -> u32 {
    assert!(rs1 < 32 && rs2 < 32, "register out of range");
    assert!((-2048..=2047).contains(&imm), "S-immediate {imm} out of range");
    let imm = (imm as u32) & 0xFFF;
    opcode | ((imm & 0x1F) << 7) | (f3 << 12) | (rs1 << 15) | (rs2 << 20) | ((imm >> 5) << 25)
}

fn b_enc(f3: u32, rs1: u32, rs2: u32, offset: i32) -> u32 {
    assert!(offset % 2 == 0, "branch offset must be even");
    assert!((-4096..=4094).contains(&offset), "B-offset {offset} out of range");
    let imm = (offset as u32) & 0x1FFF;
    0b110_0011
        | (((imm >> 11) & 1) << 7)
        | (((imm >> 1) & 0xF) << 8)
        | (f3 << 12)
        | (rs1 << 15)
        | (rs2 << 20)
        | (((imm >> 5) & 0x3F) << 25)
        | (((imm >> 12) & 1) << 31)
}

fn j_enc(rd: u32, offset: i32) -> u32 {
    assert!(offset % 2 == 0, "jump offset must be even");
    assert!((-(1 << 20)..(1 << 20)).contains(&offset), "J-offset {offset} out of range");
    let imm = (offset as u32) & 0x1F_FFFF;
    0b110_1111
        | (rd << 7)
        | (((imm >> 12) & 0xFF) << 12)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 20) & 1) << 31)
}

impl Asm {
    /// Encodes the instruction to its 32-bit machine word.
    ///
    /// # Panics
    ///
    /// Panics if a register or immediate is out of range.
    #[must_use]
    pub fn encode(self) -> u32 {
        use Asm::*;
        match self {
            Lui { rd, imm20 } => 0b011_0111 | (rd << 7) | ((imm20 & 0xF_FFFF) << 12),
            Auipc { rd, imm20 } => 0b001_0111 | (rd << 7) | ((imm20 & 0xF_FFFF) << 12),
            Jal { rd, offset } => j_enc(rd, offset),
            Jalr { rd, rs1, offset } => i_enc(0b110_0111, rd, 0, rs1, offset),
            Beq { rs1, rs2, offset } => b_enc(0b000, rs1, rs2, offset),
            Bne { rs1, rs2, offset } => b_enc(0b001, rs1, rs2, offset),
            Blt { rs1, rs2, offset } => b_enc(0b100, rs1, rs2, offset),
            Bge { rs1, rs2, offset } => b_enc(0b101, rs1, rs2, offset),
            Bltu { rs1, rs2, offset } => b_enc(0b110, rs1, rs2, offset),
            Bgeu { rs1, rs2, offset } => b_enc(0b111, rs1, rs2, offset),
            Lb { rd, rs1, offset } => i_enc(0b000_0011, rd, 0b000, rs1, offset),
            Lh { rd, rs1, offset } => i_enc(0b000_0011, rd, 0b001, rs1, offset),
            Lw { rd, rs1, offset } => i_enc(0b000_0011, rd, 0b010, rs1, offset),
            Lbu { rd, rs1, offset } => i_enc(0b000_0011, rd, 0b100, rs1, offset),
            Lhu { rd, rs1, offset } => i_enc(0b000_0011, rd, 0b101, rs1, offset),
            Sb { rs2, rs1, offset } => s_enc(0b010_0011, 0b000, rs1, rs2, offset),
            Sh { rs2, rs1, offset } => s_enc(0b010_0011, 0b001, rs1, rs2, offset),
            Sw { rs2, rs1, offset } => s_enc(0b010_0011, 0b010, rs1, rs2, offset),
            Addi { rd, rs1, imm } => i_enc(0b001_0011, rd, 0b000, rs1, imm),
            Slti { rd, rs1, imm } => i_enc(0b001_0011, rd, 0b010, rs1, imm),
            Sltiu { rd, rs1, imm } => i_enc(0b001_0011, rd, 0b011, rs1, imm),
            Xori { rd, rs1, imm } => i_enc(0b001_0011, rd, 0b100, rs1, imm),
            Ori { rd, rs1, imm } => i_enc(0b001_0011, rd, 0b110, rs1, imm),
            Andi { rd, rs1, imm } => i_enc(0b001_0011, rd, 0b111, rs1, imm),
            Slli { rd, rs1, shamt } => r_enc(0b001_0011, rd, 0b001, rs1, shamt & 31, 0),
            Srli { rd, rs1, shamt } => r_enc(0b001_0011, rd, 0b101, rs1, shamt & 31, 0),
            Srai { rd, rs1, shamt } => {
                r_enc(0b001_0011, rd, 0b101, rs1, shamt & 31, 0b010_0000)
            }
            Add { rd, rs1, rs2 } => r_enc(0b011_0011, rd, 0b000, rs1, rs2, 0),
            Sub { rd, rs1, rs2 } => r_enc(0b011_0011, rd, 0b000, rs1, rs2, 0b010_0000),
            Sll { rd, rs1, rs2 } => r_enc(0b011_0011, rd, 0b001, rs1, rs2, 0),
            Slt { rd, rs1, rs2 } => r_enc(0b011_0011, rd, 0b010, rs1, rs2, 0),
            Sltu { rd, rs1, rs2 } => r_enc(0b011_0011, rd, 0b011, rs1, rs2, 0),
            Xor { rd, rs1, rs2 } => r_enc(0b011_0011, rd, 0b100, rs1, rs2, 0),
            Srl { rd, rs1, rs2 } => r_enc(0b011_0011, rd, 0b101, rs1, rs2, 0),
            Sra { rd, rs1, rs2 } => r_enc(0b011_0011, rd, 0b101, rs1, rs2, 0b010_0000),
            Or { rd, rs1, rs2 } => r_enc(0b011_0011, rd, 0b110, rs1, rs2, 0),
            And { rd, rs1, rs2 } => r_enc(0b011_0011, rd, 0b111, rs1, rs2, 0),
            Rol { rd, rs1, rs2 } => r_enc(0b011_0011, rd, 0b001, rs1, rs2, 0b011_0000),
            Ror { rd, rs1, rs2 } => r_enc(0b011_0011, rd, 0b101, rs1, rs2, 0b011_0000),
            Rori { rd, rs1, shamt } => {
                r_enc(0b001_0011, rd, 0b101, rs1, shamt & 31, 0b011_0000)
            }
            Andn { rd, rs1, rs2 } => r_enc(0b011_0011, rd, 0b111, rs1, rs2, 0b010_0000),
            Cmov { rd, rs1, rs2 } => r_enc(CMOV_OPCODE, rd, 0, rs1, rs2, 0),
        }
    }
}

/// A growable program with pseudo-instruction helpers.
#[derive(Debug, Clone, Default)]
pub struct Program {
    instrs: Vec<Asm>,
}

impl Program {
    /// An empty program.
    #[must_use]
    pub fn new() -> Self {
        Program::default()
    }

    /// Appends one instruction.
    pub fn push(&mut self, instr: Asm) -> &mut Self {
        self.instrs.push(instr);
        self
    }

    /// `li rd, value` — loads an arbitrary 32-bit constant (1–2
    /// instructions).
    pub fn li(&mut self, rd: u32, value: u32) -> &mut Self {
        let low = (value & 0xFFF) as i32;
        let low = if low >= 2048 { low - 4096 } else { low };
        let high = value.wrapping_sub(low as u32) >> 12;
        if high == 0 {
            self.push(Asm::Addi { rd, rs1: 0, imm: low });
        } else {
            self.push(Asm::Lui { rd, imm20: high });
            if low != 0 {
                self.push(Asm::Addi { rd, rs1: rd, imm: low });
            }
        }
        self
    }

    /// `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Asm::Addi { rd: 0, rs1: 0, imm: 0 })
    }

    /// The instructions so far.
    #[must_use]
    pub fn instrs(&self) -> &[Asm] {
        &self.instrs
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if no instructions have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Encodes the whole program.
    #[must_use]
    pub fn encode(&self) -> Vec<u32> {
        self.instrs.iter().map(|i| i.encode()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_encodings() {
        // Cross-checked against the RISC-V ISA manual examples.
        assert_eq!(Asm::Addi { rd: 1, rs1: 0, imm: 42 }.encode(), 0x02A0_0093);
        assert_eq!(Asm::Add { rd: 3, rs1: 1, rs2: 2 }.encode(), 0x0020_81B3);
        assert_eq!(Asm::Lui { rd: 5, imm20: 0xDEADB }.encode(), 0xDEAD_B2B7);
        assert_eq!(Asm::Lw { rd: 4, rs1: 2, offset: 8 }.encode(), 0x0081_2203);
        assert_eq!(Asm::Sw { rs2: 4, rs1: 2, offset: 8 }.encode(), 0x0041_2423);
        assert_eq!(Asm::Jal { rd: 1, offset: 8 }.encode(), 0x0080_00EF);
        assert_eq!(Asm::Beq { rs1: 1, rs2: 2, offset: -4 }.encode(), 0xFE20_8EE3);
    }

    #[test]
    fn li_small_and_large() {
        let mut p = Program::new();
        p.li(1, 42);
        assert_eq!(p.len(), 1);
        p.li(2, 0xDEAD_BEEF);
        assert_eq!(p.len(), 3);
        // Value with low 12 bits >= 0x800 (needs the +1 hi adjustment).
        let mut q = Program::new();
        q.li(3, 0x1800);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn branch_offset_ranges_checked() {
        let r = std::panic::catch_unwind(|| {
            Asm::Beq { rs1: 0, rs2: 0, offset: 3 }.encode()
        });
        assert!(r.is_err());
        let r = std::panic::catch_unwind(|| {
            Asm::Addi { rd: 1, rs1: 0, imm: 5000 }.encode()
        });
        assert!(r.is_err());
    }

    #[test]
    fn cmov_uses_custom_opcode() {
        let enc = Asm::Cmov { rd: 1, rs1: 2, rs2: 3 }.encode();
        assert_eq!(enc & 0x7F, CMOV_OPCODE);
        assert_eq!((enc >> 7) & 0x1F, 1);
        assert_eq!((enc >> 15) & 0x1F, 2);
        assert_eq!((enc >> 20) & 0x1F, 3);
    }
}
