//! The AES-128 hardware accelerator of paper §4.3: FSM-style control.
//!
//! The specification models three "instructions" — the first round
//! (initial AddRoundKey), the intermediate rounds, and the final round —
//! each decoding on the architectural `round` counter. The datapath
//! sketch computes one round per cycle and leaves the FSM state encodings
//! and transitions as holes.
//!
//! The round functions are written once, generically over
//! [`owl_hdl::bitops::SynthExpr`] plus a table-lookup hook, so the
//! specification (over `SpecExpr`) and the datapath (over `Expr`) share
//! definitions — exactly the sense in which the ILA and the hardware
//! describe the same computation while control is synthesized.
//!
//! Block layout: byte 0 of the AES block (FIPS-197 order, column-major
//! state matrix, byte index `4*col + row`) occupies the *most significant*
//! byte of the 128-bit value.

use crate::CaseStudy;
use owl_bitvec::BitVec;
use owl_core::{AbstractionFn, DatapathKind};
use owl_hdl::bitops::SynthExpr;
use owl_hdl::Module;
use owl_ila::{Ila, Instr, SpecExpr};
use owl_oyster::Expr;

/// The AES S-box (FIPS-197 Fig. 7).
pub const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab,
    0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4,
    0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71,
    0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6,
    0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb,
    0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45,
    0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44,
    0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a,
    0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25,
    0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e,
    0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1,
    0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb,
    0x16,
];

/// The round constants for AES-128 key expansion, indexed by round 1..=10
/// (index 0 unused).
pub const RCON: [u8; 11] = [0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// S-box contents as 8-bit bitvectors (for ROM/`MemConst` declarations).
#[must_use]
pub fn sbox_table() -> Vec<BitVec> {
    SBOX.iter().map(|&b| BitVec::from_u64(8, u64::from(b))).collect()
}

/// Round-constant table padded to 16 entries (4-bit index).
#[must_use]
pub fn rcon_table() -> Vec<BitVec> {
    let mut t: Vec<BitVec> =
        RCON.iter().map(|&b| BitVec::from_u64(8, u64::from(b))).collect();
    t.resize(16, BitVec::zero(8));
    t
}

/// Expression languages that can express the AES round functions: the
/// generic bit operations plus the two lookup tables.
pub trait AesExpr: SynthExpr {
    /// S-box lookup of an 8-bit value (table named `sbox`).
    fn sbox(self) -> Self;
    /// Round-constant lookup of a 4-bit round index (table named `rcon`).
    fn rcon(self) -> Self;
}

impl AesExpr for Expr {
    fn sbox(self) -> Self {
        Expr::read("sbox", self)
    }
    fn rcon(self) -> Self {
        Expr::read("rcon", self)
    }
}

impl AesExpr for SpecExpr {
    fn sbox(self) -> Self {
        SpecExpr::load_const("sbox", self)
    }
    fn rcon(self) -> Self {
        SpecExpr::load_const("rcon", self)
    }
}

/// Extracts block byte `i` (0 = most significant byte).
fn byte<E: AesExpr>(state: &E, i: u32) -> E {
    let high = 127 - 8 * i;
    state.clone().extract_(high, high - 7)
}

/// Reassembles a block from 16 bytes (index 0 most significant).
fn from_bytes<E: AesExpr>(bytes: Vec<E>) -> E {
    let mut it = bytes.into_iter();
    let first = it.next().expect("16 bytes");
    it.fold(first, |acc, b| acc.concat_(b))
}

/// SubBytes: the S-box applied to every byte.
pub fn sub_bytes<E: AesExpr>(state: &E) -> E {
    from_bytes((0..16).map(|i| byte(state, i).sbox()).collect())
}

/// ShiftRows: row `r` of the state matrix rotates left by `r`.
pub fn shift_rows<E: AesExpr>(state: &E) -> E {
    let mut out = Vec::with_capacity(16);
    for i in 0..16u32 {
        let (col, row) = (i / 4, i % 4);
        let src = 4 * ((col + row) % 4) + row;
        out.push(byte(state, src));
    }
    from_bytes(out)
}

/// Multiplication by x in GF(2^8) (`xtime`).
fn xtime<E: AesExpr>(b: &E) -> E {
    let shifted = b.clone().extract_(6, 0).concat_(E::lit(1, 0));
    let reduced = shifted.clone().xor_(E::lit(8, 0x1b));
    E::ite_(b.clone().extract_(7, 7), reduced, shifted)
}

/// MixColumns over the whole state.
pub fn mix_columns<E: AesExpr>(state: &E) -> E {
    let mut out: Vec<Option<E>> = vec![None; 16];
    for col in 0..4u32 {
        let s: Vec<E> = (0..4).map(|r| byte(state, 4 * col + r)).collect();
        for r in 0..4usize {
            // out[r] = 2*s[r] ^ 3*s[r+1] ^ s[r+2] ^ s[r+3]
            let a = xtime(&s[r]);
            let b = xtime(&s[(r + 1) % 4]).xor_(s[(r + 1) % 4].clone());
            let c = s[(r + 2) % 4].clone();
            let d = s[(r + 3) % 4].clone();
            out[(4 * col + r as u32) as usize] = Some(a.xor_(b).xor_(c).xor_(d));
        }
    }
    from_bytes(out.into_iter().map(|b| b.expect("filled")).collect())
}

/// One AES-128 key-schedule step: the next round key from the previous
/// one, with `round_index` selecting the round constant (a 4-bit value).
pub fn next_key<E: AesExpr>(round_key: &E, round_index: &E) -> E {
    let w: Vec<E> = (0..4)
        .map(|i| {
            let high = 127 - 32 * i;
            round_key.clone().extract_(high, high - 31)
        })
        .collect();
    // g(w3) = SubWord(RotWord(w3)) ^ (rcon << 24)
    let b: Vec<E> = (0..4)
        .map(|i| {
            let high = 31 - 8 * i;
            w[3].clone().extract_(high, high - 7)
        })
        .collect();
    // RotWord: [b1, b2, b3, b0]; SubWord applies the S-box.
    let g = b[1]
        .clone()
        .sbox()
        .xor_(round_index.clone().rcon())
        .concat_(b[2].clone().sbox())
        .concat_(b[3].clone().sbox())
        .concat_(b[0].clone().sbox());
    let w4 = w[0].clone().xor_(g);
    let w5 = w[1].clone().xor_(w4.clone());
    let w6 = w[2].clone().xor_(w5.clone());
    let w7 = w[3].clone().xor_(w6.clone());
    w4.concat_(w5).concat_(w6).concat_(w7)
}

/// A full intermediate round: `MixColumns(ShiftRows(SubBytes(ct))) ^ rk`.
pub fn mid_round<E: AesExpr>(ciphertext: &E, new_round_key: &E) -> E {
    mix_columns(&shift_rows(&sub_bytes(ciphertext))).xor_(new_round_key.clone())
}

/// The final round (no MixColumns).
pub fn final_round<E: AesExpr>(ciphertext: &E, new_round_key: &E) -> E {
    shift_rows(&sub_bytes(ciphertext)).xor_(new_round_key.clone())
}

// ----------------------------------------------------------------------
// Pure reference implementation (for test vectors)
// ----------------------------------------------------------------------

/// Reference AES-128 single-block encryption (FIPS-197), for checking the
/// specification and hardware against published test vectors.
#[must_use]
pub fn aes128_encrypt_block(key: [u8; 16], plaintext: [u8; 16]) -> [u8; 16] {
    let mut round_keys = [[0u8; 16]; 11];
    round_keys[0] = key;
    for r in 1..=10 {
        let prev = round_keys[r - 1];
        let mut g = [prev[13], prev[14], prev[15], prev[12]];
        for b in &mut g {
            *b = SBOX[*b as usize];
        }
        g[0] ^= RCON[r];
        for i in 0..4 {
            round_keys[r][i] = prev[i] ^ g[i];
        }
        for i in 4..16 {
            round_keys[r][i] = prev[i] ^ round_keys[r][i - 4];
        }
    }

    let mut state = plaintext;
    for i in 0..16 {
        state[i] ^= round_keys[0][i];
    }
    let xt = |b: u8| -> u8 {
        let s = b << 1;
        if b & 0x80 != 0 {
            s ^ 0x1b
        } else {
            s
        }
    };
    for (r, round_key) in round_keys.iter().enumerate().skip(1) {
        // SubBytes
        for b in &mut state {
            *b = SBOX[*b as usize];
        }
        // ShiftRows
        let mut shifted = [0u8; 16];
        for (i, slot) in shifted.iter_mut().enumerate() {
            let (col, row) = (i / 4, i % 4);
            *slot = state[4 * ((col + row) % 4) + row];
        }
        state = shifted;
        // MixColumns (skipped in the final round)
        if r != 10 {
            let mut mixed = [0u8; 16];
            for col in 0..4 {
                let s = &state[4 * col..4 * col + 4];
                for row in 0..4 {
                    mixed[4 * col + row] = xt(s[row])
                        ^ (xt(s[(row + 1) % 4]) ^ s[(row + 1) % 4])
                        ^ s[(row + 2) % 4]
                        ^ s[(row + 3) % 4];
                }
            }
            state = mixed;
        }
        for (b, &k) in state.iter_mut().zip(round_key) {
            *b ^= k;
        }
    }
    state
}

/// Packs 16 block bytes into a 128-bit value (byte 0 most significant).
#[must_use]
pub fn block_to_bv(block: [u8; 16]) -> BitVec {
    let mut v = BitVec::from_u64(8, u64::from(block[0]));
    for &b in &block[1..] {
        v = v.concat(&BitVec::from_u64(8, u64::from(b)));
    }
    v
}

// ----------------------------------------------------------------------
// Specification, sketch, abstraction function
// ----------------------------------------------------------------------

/// The ILA specification: three instructions keyed on the `round` state.
#[must_use]
pub fn spec() -> Ila {
    let mut ila = Ila::new("aes_ila");
    let key_in = ila.new_bv_input("key_in", 128);
    let plaintext = ila.new_bv_input("plaintext", 128);
    let round = ila.new_bv_state("round", 4);
    let round_key = ila.new_bv_state("round_key", 128);
    let ciphertext = ila.new_bv_state("ciphertext", 128);
    ila.new_mem_const("sbox", 8, 8, sbox_table());
    ila.new_mem_const("rcon", 4, 8, rcon_table());

    let mut first = Instr::new("FirstRound");
    first.set_decode(round.clone().eq(SpecExpr::const_u64(4, 0)));
    first.set_update("ciphertext", plaintext.xor(key_in.clone()));
    first.set_update("round_key", key_in);
    first.set_update("round", SpecExpr::const_u64(4, 1));
    ila.add_instr(first);

    let nk = next_key(&round_key, &round);
    let mut mid = Instr::new("IntermediateRound");
    mid.set_decode(
        round
            .clone()
            .ugt(SpecExpr::const_u64(4, 0))
            .and(round.clone().ult(SpecExpr::const_u64(4, 10))),
    );
    mid.set_update("ciphertext", mid_round(&ciphertext, &nk));
    mid.set_update("round_key", nk.clone());
    mid.set_update("round", round.clone().add(SpecExpr::const_u64(4, 1)));
    ila.add_instr(mid);

    let mut fin = Instr::new("FinalRound");
    fin.set_decode(round.clone().eq(SpecExpr::const_u64(4, 10)));
    fin.set_update("ciphertext", final_round(&ciphertext, &nk));
    fin.set_update("round_key", nk);
    fin.set_update("round", round.add(SpecExpr::const_u64(4, 1)));
    ila.add_instr(fin);
    ila
}

/// The multi-cycle datapath sketch: one round per cycle, FSM-style
/// control with holes for the state encodings and the transition.
#[must_use]
pub fn sketch() -> owl_oyster::Design {
    let mut m = Module::new("aes_accel");
    let key_in = m.input("key_in", 128);
    let plaintext = m.input("plaintext", 128);
    let round = m.register("round", 4);
    let round_key = m.register("round_key", 128);
    let ciphertext = m.register("ciphertext", 128);
    m.rom("sbox", 8, 8, sbox_table());
    m.rom("rcon", 4, 8, rcon_table());
    m.output("ct_out", 128);

    let trans = m.hole("fsm_next", 2);
    let st_first = m.hole("st_first", 2);
    let st_mid = m.hole("st_mid", 2);
    let st_final = m.hole("st_final", 2);

    // The FSM state for this cycle (the `state <<= ??` of §4.3).
    let state = m.assign("state", trans);

    let first_ct = plaintext.expr().clone().xor(key_in.expr().clone());
    let nk = next_key(round_key.expr(), round.expr());
    let mid_ct = mid_round(ciphertext.expr(), &nk);
    let fin_ct = final_round(ciphertext.expr(), &nk);

    let in_first = state.eq(st_first.clone());
    let in_mid = state.eq(st_mid.clone());
    let in_final = state.eq(st_final.clone());

    m.assign(
        "ciphertext",
        in_first.select(
            owl_hdl::Wire::from_expr(first_ct),
            in_mid.select(
                owl_hdl::Wire::from_expr(mid_ct),
                in_final.select(owl_hdl::Wire::from_expr(fin_ct), ciphertext.clone()),
            ),
        ),
    );
    m.assign(
        "round_key",
        in_first.select(
            key_in,
            in_mid.clone().select(
                owl_hdl::Wire::from_expr(nk.clone()),
                in_final.select(owl_hdl::Wire::from_expr(nk), round_key.clone()),
            ),
        ),
    );
    m.assign(
        "round",
        in_first.select(owl_hdl::Wire::lit(4, 1), round.clone() + owl_hdl::Wire::lit(4, 1)),
    );
    m.assign("ct_out", ciphertext);
    m.finish().expect("aes sketch is well-formed")
}

/// The abstraction function (paper §4.3): direct register mapping, one
/// cycle, no pipeline timing.
#[must_use]
pub fn alpha() -> AbstractionFn {
    let mut a = AbstractionFn::new(1);
    a.map_input("key_in", "key_in")
        .map_input("plaintext", "plaintext")
        .map("round", "round", DatapathKind::Register, [1], [1])
        .map("round_key", "round_key", DatapathKind::Register, [1], [1])
        .map("ciphertext", "ciphertext", DatapathKind::Register, [1], [1]);
    a
}

/// The bundled case study.
#[must_use]
pub fn case_study() -> CaseStudy {
    CaseStudy {
        name: "AES Accelerator".to_string(),
        sketch: sketch(),
        spec: spec(),
        alpha: alpha(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_core::{complete_design, control_union, verify_design, SynthesisSession};
    use owl_ila::golden::{GoldenModel, SpecState};
    use owl_oyster::Interpreter;
    use owl_smt::TermManager;
    use std::collections::HashMap;

    /// FIPS-197 Appendix C.1 test vector.
    const KEY: [u8; 16] =
        [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f];
    const PLAIN: [u8; 16] = [
        0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
        0xee, 0xff,
    ];
    const CIPHER: [u8; 16] = [
        0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
        0xc5, 0x5a,
    ];

    #[test]
    fn reference_matches_fips197() {
        assert_eq!(aes128_encrypt_block(KEY, PLAIN), CIPHER);
    }

    #[test]
    fn spec_golden_model_encrypts() {
        let ila = spec();
        let model = GoldenModel::new(&ila).unwrap();
        let mut state = SpecState::zeroed(&ila);
        state.inputs.insert("key_in".into(), block_to_bv(KEY));
        state.inputs.insert("plaintext".into(), block_to_bv(PLAIN));
        let mut fired = Vec::new();
        for _ in 0..11 {
            fired.push(model.step(&mut state).unwrap().unwrap());
        }
        assert_eq!(fired[0], "FirstRound");
        assert_eq!(fired[10], "FinalRound");
        assert!(fired[1..10].iter().all(|f| f == "IntermediateRound"));
        assert_eq!(state.bvs["ciphertext"], block_to_bv(CIPHER));
        // Round 11: nothing decodes (the machine halts).
        assert_eq!(model.step(&mut state).unwrap(), None);
    }

    #[test]
    fn aes_synthesizes_verifies_and_encrypts() {
        let cs = case_study();
        let mut mgr = TermManager::new();
        let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha).run_with(&mut mgr)
            .and_then(|out| out.require_complete())
            .expect("synthesis succeeds");
        assert_eq!(out.solutions.len(), 3);
        // The transition hole and the fired branch's encoding agree.
        for sol in &out.solutions {
            let next = &sol.holes["fsm_next"];
            let enc = match sol.instr.as_str() {
                "FirstRound" => &sol.holes["st_first"],
                "IntermediateRound" => &sol.holes["st_mid"],
                _ => &sol.holes["st_final"],
            };
            assert_eq!(next, enc, "{}", sol.instr);
        }

        let union = control_union(&cs.sketch, &cs.spec, &cs.alpha, &out.solutions).unwrap();
        let complete = complete_design(&cs.sketch, &union);
        let mut mgr2 = TermManager::new();
        verify_design(&mut mgr2, &complete, &cs.spec, &cs.alpha, None)
            .expect("completed design verifies");

        // Simulate the completed accelerator on the FIPS-197 vector.
        let mut sim = Interpreter::new(&complete).unwrap();
        let inputs: HashMap<String, owl_bitvec::BitVec> = [
            ("key_in".to_string(), block_to_bv(KEY)),
            ("plaintext".to_string(), block_to_bv(PLAIN)),
        ]
        .into();
        for _ in 0..11 {
            sim.step(&inputs).unwrap();
        }
        assert_eq!(sim.reg("ciphertext").unwrap(), &block_to_bv(CIPHER));
    }
}
