//! Debug driver for the single-cycle RV32I base configuration: runs a
//! traced synthesis, prints the structured stats report, and (with
//! `--trace <path>`) dumps a Chrome trace of the whole run.

use owl_core::*;
use owl_cores::rv32i::{self, Extensions};
use owl_smt::TermManager;
use owl_trace::report::to_json_compact;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let ext = Extensions::BASE;
    let cs = rv32i::single_cycle(ext);
    println!("sketch lines: {}", cs.sketch.line_count());
    let tracer = Tracer::enabled();
    let mut mgr = TermManager::new();
    let t0 = Instant::now();
    let result = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .tracer(tracer.clone())
        .run_with(&mut mgr)
        .and_then(|out| out.require_complete());
    match result {
        Ok(out) => {
            println!(
                "synthesized {} instrs in {:.2}s",
                out.solutions.len(),
                t0.elapsed().as_secs_f64()
            );
            println!("stats: {}", to_json_compact(&out.stats.report()));
            for s in out.solutions.iter().take(3) {
                println!(
                    "{}: alu_op={} reg_write={} jump={}",
                    s.instr, s.holes["alu_op"], s.holes["reg_write"], s.holes["jump"]
                );
            }
            let t1 = Instant::now();
            let union = control_union(&cs.sketch, &cs.spec, &cs.alpha, &out.solutions).unwrap();
            let complete = complete_design(&cs.sketch, &union);
            let mut mgr2 = TermManager::new();
            match verify_design(&mut mgr2, &complete, &cs.spec, &cs.alpha, None) {
                Ok(vstats) => {
                    println!("verified in {:.2}s", t1.elapsed().as_secs_f64());
                    println!("verify: {}", to_json_compact(&vstats.report()));
                }
                Err(e) => println!("VERIFY FAILED: {e}"),
            }
        }
        Err(e) => println!("FAILED after {:.2}s: {e}", t0.elapsed().as_secs_f64()),
    }
    if let Some(path) = trace_path {
        let mut file = std::fs::File::create(&path).expect("create trace file");
        tracer.write_chrome_trace(&mut file).expect("write trace");
        println!("wrote Chrome trace to {path}");
    }
}
