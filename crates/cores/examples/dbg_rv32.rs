use owl_core::*;
use owl_cores::rv32i::{self, Extensions};
use owl_smt::TermManager;
use std::time::Instant;

fn main() {
    let ext = Extensions::BASE;
    let cs = rv32i::single_cycle(ext);
    println!("sketch lines: {}", cs.sketch.line_count());
    let mut mgr = TermManager::new();
    let t0 = Instant::now();
    let result = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .run_with(&mut mgr)
        .and_then(|out| out.require_complete());
    match result {
        Ok(out) => {
            println!("synthesized {} instrs in {:.2}s, {} cex rounds, {} solver calls",
                out.solutions.len(), t0.elapsed().as_secs_f64(), out.stats.cex_rounds, out.stats.solver_calls);
            for s in out.solutions.iter().take(3) {
                println!("{}: alu_op={} reg_write={} jump={}", s.instr,
                    s.holes["alu_op"], s.holes["reg_write"], s.holes["jump"]);
            }
            let t1 = Instant::now();
            let union = control_union(&cs.sketch, &cs.spec, &cs.alpha, &out.solutions).unwrap();
            let complete = complete_design(&cs.sketch, &union);
            let mut mgr2 = TermManager::new();
            match verify_design(&mut mgr2, &complete, &cs.spec, &cs.alpha, None) {
                Ok(_) => println!("verified in {:.2}s", t1.elapsed().as_secs_f64()),
                Err(e) => println!("VERIFY FAILED: {e}"),
            }
        }
        Err(e) => println!("FAILED after {:.2}s: {e}", t0.elapsed().as_secs_f64()),
    }
}
