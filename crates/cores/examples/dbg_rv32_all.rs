//! Debug driver sweeping every RV32I configuration: each run is traced
//! and summarized through the structured stats report instead of
//! ad-hoc counter prints.

use owl_core::*;
use owl_cores::rv32i::{self, Extensions};
use owl_smt::TermManager;
use owl_trace::report::to_json_compact;
use std::time::Instant;

fn run(name: &str, cs: &owl_cores::CaseStudy) {
    let tracer = Tracer::enabled();
    let mut mgr = TermManager::new();
    let t0 = Instant::now();
    let result = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .tracer(tracer)
        .run_with(&mut mgr)
        .and_then(|out| out.require_complete());
    match result {
        Ok(out) => {
            let synth_t = t0.elapsed().as_secs_f64();
            let union = control_union(&cs.sketch, &cs.spec, &cs.alpha, &out.solutions).unwrap();
            let complete = complete_design(&cs.sketch, &union);
            let mut mgr2 = TermManager::new();
            let t1 = Instant::now();
            let v = verify_design(&mut mgr2, &complete, &cs.spec, &cs.alpha, None);
            println!(
                "{name}: synth {:.2}s verify {:.2}s ({:?}) stats {}",
                synth_t,
                t1.elapsed().as_secs_f64(),
                v.is_ok(),
                to_json_compact(&out.stats.report()),
            );
        }
        Err(e) => println!("{name}: FAILED after {:.2}s: {e}", t0.elapsed().as_secs_f64()),
    }
}

fn main() {
    for ext in [Extensions::BASE, Extensions::ZBKB, Extensions::ZBKC] {
        run(&format!("single/{ext}"), &rv32i::single_cycle(ext));
    }
    let ext = Extensions::BASE;
    run(&format!("two-stage/{ext}"), &rv32i::two_stage(ext));
    // Reference verifies directly.
    let refd = rv32i::datapath::reference_single_cycle(Extensions::ZBKC);
    let cs = rv32i::single_cycle(Extensions::ZBKC);
    let mut mgr = TermManager::new();
    let t = Instant::now();
    let v = verify_design(&mut mgr, &refd, &cs.spec, &cs.alpha, None);
    match v {
        Ok(stats) => println!(
            "reference zbkc verify: {:.2}s -> {}",
            t.elapsed().as_secs_f64(),
            to_json_compact(&stats.report()),
        ),
        Err(e) => println!("reference zbkc verify: {:.2}s -> FAILED: {e}", t.elapsed().as_secs_f64()),
    }
}
