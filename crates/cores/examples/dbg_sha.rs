//! Debug driver for the crypto core: traced synthesis with a
//! structured stats report, then SHA-256 differential simulation
//! against the handwritten reference.

use owl_core::*;
use owl_cores::{crypto_core, sha256};
use owl_smt::TermManager;
use owl_trace::report::to_json_compact;
use std::time::Instant;

fn main() {
    let cs = crypto_core::case_study();
    let tracer = Tracer::enabled();
    let mut mgr = TermManager::new();
    let t0 = Instant::now();
    let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha)
        .tracer(tracer)
        .run_with(&mut mgr)
        .and_then(|out| out.require_complete())
        .unwrap();
    let union = control_union_with(&cs.sketch, &cs.spec, &cs.alpha, &out.solutions, &crypto_core::decode_bindings()).unwrap();
    let complete = complete_design(&cs.sketch, &union);
    println!("synth {:.2}s, stats {}", t0.elapsed().as_secs_f64(), to_json_compact(&out.stats.report()));
    let refd = crypto_core::reference();
    let prog = sha256::sha256_program();
    println!("program: {} instructions", prog.len());
    let code = prog.encode();
    for len in [4usize, 8, 16, 24, 32] {
        let msg: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
        let data = sha256::message_data(&msg);
        let t = Instant::now();
        let (gen_cycles, gen_sim) = crypto_core::run_program(&complete, &code, &data, 200_000);
        let (ref_cycles, ref_sim) = crypto_core::run_program(&refd, &code, &data, 200_000);
        let gen_digest = sha256::read_digest(&gen_sim);
        let ref_digest = sha256::read_digest(&ref_sim);
        let expect = sha256::sha256_ref(&msg);
        println!("len {len:2}: gen {gen_cycles} cycles, ref {ref_cycles} cycles, digest ok: {} {}  ({:.1}s)",
            gen_digest == expect, ref_digest == expect, t.elapsed().as_secs_f64());
    }
}
