//! Debug driver for the ALU machine's extracted conditions. By default
//! prints a concise summary; `--verbose` dumps the full pre/post terms.

use owl_core::*;
use owl_cores::alu_machine;
use owl_oyster::SymbolicEvaluator;
use owl_smt::*;

fn main() {
    let verbose = std::env::args().any(|a| a == "--verbose");
    let cs = alu_machine::case_study();
    let mut mgr = TermManager::new();
    let trace = SymbolicEvaluator::run(&mut mgr, &cs.sketch, 3).unwrap();
    let mut b = ConditionBuilder::new(&cs.spec, &cs.alpha, &trace).unwrap();
    let conds = b.instr_conditions(&mut mgr, &cs.spec.instrs()[0]).unwrap();
    println!(
        "{}: {} pres, {} posts (rerun with --verbose for the full terms)",
        conds.name,
        conds.pres.len(),
        conds.posts.len()
    );
    if verbose {
        for p in &conds.pres {
            println!("PRE {}", mgr.display_term(*p));
        }
        for p in &conds.posts {
            let s = mgr.display_term(*p);
            println!("POST {}", &s[..s.len().min(3000)]);
        }
    }
    let mut env = Env::new();
    env.set_var(mgr.as_var(trace.holes["wr_en"]).unwrap(), owl_bitvec::BitVec::from_u64(1, 0));
    env.set_var(mgr.as_var(trace.holes["alu_sel"]).unwrap(), owl_bitvec::BitVec::from_u64(2, 0));
    let pre = substitute(&mut mgr, conds.pres[0], &env);
    let post = substitute(&mut mgr, conds.posts[0], &env);
    if verbose {
        let s = mgr.display_term(post);
        println!("post after subst: {}", &s[..s.len().min(3000)]);
    }
    let npost = mgr.not(post);
    println!(
        "cex exists with wr_en=0: {:?}",
        matches!(solve(&mut mgr, &[pre, npost], None).result, SmtResult::Sat(_))
    );
}
