//! The [`Module`] builder and [`Wire`] expression handles.

use owl_oyster::{BinOp, Design, Expr, OysterError};

/// A combinational expression handle with operator overloading.
///
/// `Wire` wraps an [`Expr`]; cloning is cheap enough for builder use.
/// Widths are checked when the finished design is validated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wire {
    expr: Expr,
}

impl Wire {
    /// Wraps an expression.
    #[must_use]
    pub fn from_expr(expr: Expr) -> Self {
        Wire { expr }
    }

    /// The underlying expression.
    #[must_use]
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// Consumes the handle, returning the expression.
    #[must_use]
    pub fn into_expr(self) -> Expr {
        self.expr
    }

    /// A constant wire.
    #[must_use]
    pub fn lit(width: u32, value: u64) -> Wire {
        Wire::from_expr(Expr::const_u64(width, value))
    }

    /// Equality comparison (1-bit result).
    #[must_use]
    pub fn eq(&self, rhs: impl Into<Wire>) -> Wire {
        Wire::from_expr(self.expr.clone().eq(rhs.into().expr))
    }

    /// Disequality comparison (1-bit result).
    #[must_use]
    pub fn ne(&self, rhs: impl Into<Wire>) -> Wire {
        Wire::from_expr(self.expr.clone().neq(rhs.into().expr))
    }

    /// Unsigned less-than (1-bit result).
    #[must_use]
    pub fn lt_u(&self, rhs: impl Into<Wire>) -> Wire {
        Wire::from_expr(Expr::binop(BinOp::Ult, self.expr.clone(), rhs.into().expr))
    }

    /// Unsigned less-or-equal (1-bit result).
    #[must_use]
    pub fn le_u(&self, rhs: impl Into<Wire>) -> Wire {
        Wire::from_expr(Expr::binop(BinOp::Ule, self.expr.clone(), rhs.into().expr))
    }

    /// Unsigned greater-or-equal (1-bit result).
    #[must_use]
    pub fn ge_u(&self, rhs: impl Into<Wire>) -> Wire {
        rhs.into().le_u(self.clone())
    }

    /// Signed less-than (1-bit result).
    #[must_use]
    pub fn lt_s(&self, rhs: impl Into<Wire>) -> Wire {
        Wire::from_expr(Expr::binop(BinOp::Slt, self.expr.clone(), rhs.into().expr))
    }

    /// Signed greater-or-equal (1-bit result).
    #[must_use]
    pub fn ge_s(&self, rhs: impl Into<Wire>) -> Wire {
        Wire::from_expr(Expr::binop(BinOp::Sle, rhs.into().expr, self.expr.clone()))
    }

    /// Arithmetic (sign-filling) right shift.
    #[must_use]
    pub fn shr_arith(&self, rhs: impl Into<Wire>) -> Wire {
        Wire::from_expr(Expr::binop(BinOp::Ashr, self.expr.clone(), rhs.into().expr))
    }

    /// Multiplication modulo `2^w`.
    #[must_use]
    pub fn mul(&self, rhs: impl Into<Wire>) -> Wire {
        Wire::from_expr(Expr::binop(BinOp::Mul, self.expr.clone(), rhs.into().expr))
    }

    /// Bit extraction `[high..=low]`.
    #[must_use]
    pub fn bits(&self, high: u32, low: u32) -> Wire {
        Wire::from_expr(self.expr.clone().extract(high, low))
    }

    /// A single bit.
    #[must_use]
    pub fn bit(&self, i: u32) -> Wire {
        self.bits(i, i)
    }

    /// Concatenation: `self` becomes the high part.
    #[must_use]
    pub fn concat(&self, low: impl Into<Wire>) -> Wire {
        Wire::from_expr(self.expr.clone().concat(low.into().expr))
    }

    /// Zero extension.
    #[must_use]
    pub fn zext(&self, width: u32) -> Wire {
        Wire::from_expr(self.expr.clone().zext(width))
    }

    /// Sign extension.
    #[must_use]
    pub fn sext(&self, width: u32) -> Wire {
        Wire::from_expr(self.expr.clone().sext(width))
    }

    /// Selection: `cond.select(t, e)` is `if cond then t else e`
    /// (the receiver is the condition).
    #[must_use]
    pub fn select(&self, then: impl Into<Wire>, els: impl Into<Wire>) -> Wire {
        Wire::from_expr(Expr::ite(self.expr.clone(), then.into().expr, els.into().expr))
    }
}

impl From<Expr> for Wire {
    fn from(expr: Expr) -> Self {
        Wire { expr }
    }
}

macro_rules! wire_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl std::ops::$trait for Wire {
            type Output = Wire;
            fn $method(self, rhs: Wire) -> Wire {
                Wire::from_expr(Expr::binop($op, self.expr, rhs.expr))
            }
        }
        impl std::ops::$trait<&Wire> for &Wire {
            type Output = Wire;
            fn $method(self, rhs: &Wire) -> Wire {
                Wire::from_expr(Expr::binop($op, self.expr.clone(), rhs.expr.clone()))
            }
        }
    };
}

wire_binop!(Add, add, BinOp::Add);
wire_binop!(Sub, sub, BinOp::Sub);
wire_binop!(BitAnd, bitand, BinOp::And);
wire_binop!(BitOr, bitor, BinOp::Or);
wire_binop!(BitXor, bitxor, BinOp::Xor);
wire_binop!(Shl, shl, BinOp::Shl);
wire_binop!(Shr, shr, BinOp::Lshr);

impl std::ops::Not for Wire {
    type Output = Wire;
    fn not(self) -> Wire {
        Wire::from_expr(self.expr.not())
    }
}

impl std::ops::Not for &Wire {
    type Output = Wire;
    fn not(self) -> Wire {
        Wire::from_expr(self.expr.clone().not())
    }
}

/// A datapath module under construction; [`Module::finish`] yields a
/// checked Oyster [`Design`].
#[derive(Debug)]
pub struct Module {
    design: Design,
}

impl Module {
    /// Creates an empty module.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Module { design: Design::new(name) }
    }

    /// Declares an input and returns its wire.
    pub fn input(&mut self, name: &str, width: u32) -> Wire {
        self.design.input(name, width);
        Wire::from_expr(Expr::var(name))
    }

    /// Declares an output (drive it with [`Module::assign`]).
    pub fn output(&mut self, name: &str, width: u32) {
        self.design.output(name, width);
    }

    /// Declares a register and returns its (current-value) wire.
    pub fn register(&mut self, name: &str, width: u32) -> Wire {
        self.design.register(name, width);
        Wire::from_expr(Expr::var(name))
    }

    /// Declares a memory; read with [`Module::read`], write with
    /// [`Module::write`].
    pub fn memory(&mut self, name: &str, addr_width: u32, data_width: u32) {
        self.design.memory(name, addr_width, data_width);
    }

    /// Declares a ROM with constant contents.
    pub fn rom(&mut self, name: &str, addr_width: u32, data_width: u32, data: Vec<owl_bitvec::BitVec>) {
        self.design.rom(name, addr_width, data_width, data);
    }

    /// Declares a control-logic hole (PyRTL's `??`) and returns its wire.
    pub fn hole(&mut self, name: &str, width: u32) -> Wire {
        self.design.hole(name, width);
        Wire::from_expr(Expr::var(name))
    }

    /// A memory read expression.
    #[must_use]
    pub fn read(&self, mem: &str, addr: impl Into<Wire>) -> Wire {
        Wire::from_expr(Expr::read(mem, addr.into().into_expr()))
    }

    /// Adds a guarded synchronous memory write.
    pub fn write(
        &mut self,
        mem: &str,
        addr: impl Into<Wire>,
        data: impl Into<Wire>,
        enable: impl Into<Wire>,
    ) -> &mut Self {
        self.design.write(
            mem,
            addr.into().into_expr(),
            data.into().into_expr(),
            enable.into().into_expr(),
        );
        self
    }

    /// Assigns a wire/output, or a register's next value, and returns the
    /// assigned wire for further use.
    pub fn assign(&mut self, name: &str, value: impl Into<Wire>) -> Wire {
        self.design.assign(name, value.into().into_expr());
        Wire::from_expr(Expr::var(name))
    }

    /// Starts a PyRTL-style conditional assignment block.
    #[must_use]
    pub fn conditional(&mut self) -> crate::Cond<'_> {
        crate::Cond::new(self)
    }

    pub(crate) fn design_mut(&mut self) -> &mut Design {
        &mut self.design
    }

    /// A read-only view of the design built so far.
    #[must_use]
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Validates and returns the finished design.
    ///
    /// # Errors
    ///
    /// Returns the first width or name-resolution error.
    pub fn finish(self) -> Result<Design, OysterError> {
        self.design.check()?;
        Ok(self.design)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_bitvec::BitVec;
    use owl_oyster::Interpreter;
    use std::collections::HashMap;

    #[test]
    fn operators_build_expected_exprs() {
        let a = Wire::from_expr(Expr::var("a"));
        let b = Wire::from_expr(Expr::var("b"));
        assert_eq!((a.clone() + b.clone()).expr().to_string(), "a + b");
        assert_eq!((&a & &b).expr().to_string(), "a & b");
        assert_eq!((!a.clone()).expr().to_string(), "~a");
        assert_eq!(a.eq(b.clone()).expr().to_string(), "a == b");
        assert_eq!(a.lt_u(b.clone()).expr().to_string(), "a <u b");
        assert_eq!(a.shr_arith(b.clone()).expr().to_string(), "a >>> b");
        assert_eq!(a.bits(7, 4).expr().to_string(), "extract(a, 7, 4)");
        assert_eq!(
            a.eq(Wire::lit(8, 1)).select(b.clone(), a.clone()).expr().to_string(),
            "if a == 8'x01 then b else a"
        );
    }

    #[test]
    fn module_builds_runnable_design() {
        let mut m = Module::new("mac");
        let x = m.input("x", 8);
        let en = m.input("en", 1);
        let acc = m.register("acc", 8);
        m.output("out", 8);
        m.assign("acc", en.select(acc.clone() + x, acc.clone()));
        m.assign("out", acc);
        let d = m.finish().unwrap();
        let mut sim = Interpreter::new(&d).unwrap();
        let mut inputs = HashMap::new();
        inputs.insert("x".to_string(), BitVec::from_u64(8, 5));
        inputs.insert("en".to_string(), BitVec::from_u64(1, 1));
        sim.step(&inputs).unwrap();
        sim.step(&inputs).unwrap();
        assert_eq!(sim.reg("acc").unwrap().to_u64(), Some(10));
    }

    #[test]
    fn memory_and_holes() {
        let mut m = Module::new("mh");
        let addr = m.input("addr", 4);
        let data = m.input("data", 8);
        m.memory("ram", 4, 8);
        let we = m.hole("we", 1);
        m.write("ram", addr.clone(), data, we);
        m.output("q", 8);
        let q = m.read("ram", addr);
        m.assign("q", q);
        let d = m.finish().unwrap();
        assert_eq!(d.hole_names(), vec!["we"]);
    }

    #[test]
    fn finish_rejects_bad_widths() {
        let mut m = Module::new("bad");
        let a = m.input("a", 4);
        let b = m.input("b", 8);
        m.assign("x", a + b);
        assert!(m.finish().is_err());
    }
}
