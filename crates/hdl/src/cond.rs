//! PyRTL's `conditional_assignment` pattern.
//!
//! `with cond:` blocks assign registers/outputs and issue memory writes
//! under a guard; nested blocks conjoin guards, and `otherwise` fires when
//! no preceding sibling condition held. Lowering produces one if-then-else
//! chain per assigned target (first matching block wins, like PyRTL) and
//! one guarded `write` per memory write.

use crate::module::{Module, Wire};
use owl_oyster::{DeclKind, Expr, OysterError};

type GuardedAssign = (Expr, String, Expr);
type GuardedWrite = (String, Expr, Expr, Expr);

/// A conditional-assignment block under construction. Obtain with
/// [`Module::conditional`]; finalize with [`Cond::apply`].
///
/// # Examples
///
/// ```
/// use owl_hdl::Module;
///
/// let mut m = Module::new("demo");
/// let go = m.input("go", 1);
/// let stop = m.input("stop", 1);
/// let acc = m.register("acc", 8);
/// let one = owl_hdl::Wire::lit(8, 1);
/// let mut c = m.conditional();
/// c.when(go, |s| s.set("acc", acc.clone() + one.clone()));
/// c.when(stop, |s| s.set("acc", owl_hdl::Wire::lit(8, 0)));
/// c.apply()?;
/// assert!(m.design().check().is_ok());
/// # Ok::<(), owl_oyster::OysterError>(())
/// ```
#[derive(Debug)]
pub struct Cond<'m> {
    module: &'m mut Module,
    assigns: Vec<GuardedAssign>,
    writes: Vec<GuardedWrite>,
    siblings: Vec<Expr>,
}

/// The body of one `with` block; assign targets and issue writes here.
#[derive(Debug)]
pub struct Scope<'a> {
    guard: Expr,
    assigns: &'a mut Vec<GuardedAssign>,
    writes: &'a mut Vec<GuardedWrite>,
    siblings: Vec<Expr>,
}

fn or_all(conds: &[Expr]) -> Expr {
    conds
        .iter()
        .cloned()
        .reduce(|a, b| a.or(b))
        .unwrap_or_else(|| Expr::const_u64(1, 0))
}

impl<'m> Cond<'m> {
    pub(crate) fn new(module: &'m mut Module) -> Self {
        Cond { module, assigns: Vec::new(), writes: Vec::new(), siblings: Vec::new() }
    }

    /// Opens a `with cond:` block.
    pub fn when(&mut self, cond: impl Into<Wire>, body: impl FnOnce(&mut Scope<'_>)) -> &mut Self {
        let c = cond.into().into_expr();
        self.siblings.push(c.clone());
        let mut scope = Scope {
            guard: c,
            assigns: &mut self.assigns,
            writes: &mut self.writes,
            siblings: Vec::new(),
        };
        body(&mut scope);
        self
    }

    /// Opens a `with otherwise:` block (no preceding sibling held).
    pub fn otherwise(&mut self, body: impl FnOnce(&mut Scope<'_>)) -> &mut Self {
        let guard = or_all(&self.siblings).not();
        let mut scope = Scope {
            guard,
            assigns: &mut self.assigns,
            writes: &mut self.writes,
            siblings: Vec::new(),
        };
        body(&mut scope);
        self
    }

    /// Lowers the collected blocks into the module.
    ///
    /// Each assigned target must be a declared register (default: holds
    /// its value) or output (default: zero). Guards are applied in block
    /// order; the first matching block wins.
    ///
    /// # Errors
    ///
    /// Returns an error if a target is not a declared register or output.
    pub fn apply(self) -> Result<(), OysterError> {
        let Cond { module, assigns, writes, .. } = self;
        // Group assignments per target, preserving block order.
        let mut targets: Vec<String> = Vec::new();
        for (_, t, _) in &assigns {
            if !targets.contains(t) {
                targets.push(t.clone());
            }
        }
        for target in targets {
            let decl = module.design().decl(&target).cloned().ok_or_else(|| {
                OysterError::new(format!(
                    "conditional target {target} must be a declared register or output"
                ))
            })?;
            let default = match decl.kind {
                DeclKind::Register => Expr::var(&target),
                DeclKind::Output => Expr::Const(owl_bitvec::BitVec::zero(decl.width)),
                _ => {
                    return Err(OysterError::new(format!(
                        "conditional target {target} must be a register or output"
                    )))
                }
            };
            let chain = assigns
                .iter()
                .filter(|(_, t, _)| *t == target)
                .rev()
                .fold(default, |acc, (guard, _, value)| {
                    Expr::ite(guard.clone(), value.clone(), acc)
                });
            module.design_mut().assign(&target, chain);
        }
        for (mem, addr, data, guard) in writes {
            module.design_mut().write(&mem, addr, data, guard);
        }
        Ok(())
    }
}

impl Scope<'_> {
    /// Assigns `target` under this block's guard.
    pub fn set(&mut self, target: &str, value: impl Into<Wire>) {
        self.assigns
            .push((self.guard.clone(), target.to_string(), value.into().into_expr()));
    }

    /// Issues a memory write under this block's guard.
    pub fn write(&mut self, mem: &str, addr: impl Into<Wire>, data: impl Into<Wire>) {
        self.writes.push((
            mem.to_string(),
            addr.into().into_expr(),
            data.into().into_expr(),
            self.guard.clone(),
        ));
    }

    /// Opens a nested `with cond:` block (guards conjoin).
    pub fn when(&mut self, cond: impl Into<Wire>, body: impl FnOnce(&mut Scope<'_>)) -> &mut Self {
        let c = cond.into().into_expr();
        self.siblings.push(c.clone());
        let mut scope = Scope {
            guard: self.guard.clone().and(c),
            assigns: self.assigns,
            writes: self.writes,
            siblings: Vec::new(),
        };
        body(&mut scope);
        self
    }

    /// Opens a nested `with otherwise:` block.
    pub fn otherwise(&mut self, body: impl FnOnce(&mut Scope<'_>)) -> &mut Self {
        let none = or_all(&self.siblings).not();
        let mut scope = Scope {
            guard: self.guard.clone().and(none),
            assigns: self.assigns,
            writes: self.writes,
            siblings: Vec::new(),
        };
        body(&mut scope);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_bitvec::BitVec;
    use owl_oyster::Interpreter;
    use std::collections::HashMap;

    fn step(sim: &mut Interpreter<'_>, pairs: &[(&str, u32, u64)]) {
        let inputs: HashMap<String, BitVec> = pairs
            .iter()
            .map(|&(n, w, v)| (n.to_string(), BitVec::from_u64(w, v)))
            .collect();
        sim.step(&inputs).unwrap();
    }

    #[test]
    fn first_match_wins() {
        let mut m = Module::new("fm");
        let a = m.input("a", 1);
        let b = m.input("b", 1);
        m.register("r", 8);
        let mut c = m.conditional();
        c.when(a, |s| s.set("r", Wire::lit(8, 1)));
        c.when(b, |s| s.set("r", Wire::lit(8, 2)));
        c.apply().unwrap();
        let d = m.finish().unwrap();
        let mut sim = Interpreter::new(&d).unwrap();
        step(&mut sim, &[("a", 1, 1), ("b", 1, 1)]);
        assert_eq!(sim.reg("r").unwrap().to_u64(), Some(1)); // a wins
        step(&mut sim, &[("a", 1, 0), ("b", 1, 1)]);
        assert_eq!(sim.reg("r").unwrap().to_u64(), Some(2));
        step(&mut sim, &[("a", 1, 0), ("b", 1, 0)]);
        assert_eq!(sim.reg("r").unwrap().to_u64(), Some(2)); // register holds
    }

    #[test]
    fn otherwise_fires_when_no_sibling_does() {
        let mut m = Module::new("ow");
        let a = m.input("a", 1);
        m.register("x", 4);
        m.register("y", 4);
        let mut c = m.conditional();
        c.when(a, |s| s.set("x", Wire::lit(4, 1)));
        c.otherwise(|s| s.set("y", Wire::lit(4, 9)));
        c.apply().unwrap();
        let d = m.finish().unwrap();
        let mut sim = Interpreter::new(&d).unwrap();
        step(&mut sim, &[("a", 1, 1)]);
        assert_eq!(sim.reg("x").unwrap().to_u64(), Some(1));
        assert_eq!(sim.reg("y").unwrap().to_u64(), Some(0)); // untouched
        step(&mut sim, &[("a", 1, 0)]);
        assert_eq!(sim.reg("y").unwrap().to_u64(), Some(9));
    }

    #[test]
    fn nested_blocks_conjoin_guards() {
        let mut m = Module::new("nest");
        let a = m.input("a", 1);
        let b = m.input("b", 1);
        m.register("r", 4);
        let mut c = m.conditional();
        c.when(a, |s| {
            s.when(b, |s2| s2.set("r", Wire::lit(4, 3)));
            s.otherwise(|s2| s2.set("r", Wire::lit(4, 7)));
        });
        c.apply().unwrap();
        let d = m.finish().unwrap();
        let mut sim = Interpreter::new(&d).unwrap();
        step(&mut sim, &[("a", 1, 1), ("b", 1, 1)]);
        assert_eq!(sim.reg("r").unwrap().to_u64(), Some(3));
        step(&mut sim, &[("a", 1, 1), ("b", 1, 0)]);
        assert_eq!(sim.reg("r").unwrap().to_u64(), Some(7));
        step(&mut sim, &[("a", 1, 0), ("b", 1, 1)]);
        assert_eq!(sim.reg("r").unwrap().to_u64(), Some(7)); // holds
    }

    #[test]
    fn guarded_memory_writes() {
        let mut m = Module::new("gw");
        let en = m.input("en", 1);
        let addr = m.input("addr", 2);
        let data = m.input("data", 8);
        m.memory("ram", 2, 8);
        let mut c = m.conditional();
        c.when(en, |s| s.write("ram", addr, data));
        c.apply().unwrap();
        let d = m.finish().unwrap();
        let mut sim = Interpreter::new(&d).unwrap();
        step(&mut sim, &[("en", 1, 0), ("addr", 2, 1), ("data", 8, 0xAA)]);
        assert_eq!(sim.mem("ram").unwrap().read(1).to_u64(), Some(0));
        step(&mut sim, &[("en", 1, 1), ("addr", 2, 1), ("data", 8, 0xAA)]);
        assert_eq!(sim.mem("ram").unwrap().read(1).to_u64(), Some(0xAA));
    }

    #[test]
    fn outputs_default_to_zero() {
        let mut m = Module::new("od");
        let a = m.input("a", 1);
        m.output("o", 4);
        let mut c = m.conditional();
        c.when(a, |s| s.set("o", Wire::lit(4, 5)));
        c.apply().unwrap();
        let d = m.finish().unwrap();
        let mut sim = Interpreter::new(&d).unwrap();
        let inputs: HashMap<String, BitVec> =
            [("a".to_string(), BitVec::from_u64(1, 0))].into();
        let out = sim.step(&inputs).unwrap();
        assert_eq!(out.outputs["o"].to_u64(), Some(0));
    }

    #[test]
    fn undeclared_target_rejected() {
        let mut m = Module::new("bad");
        let a = m.input("a", 1);
        let mut c = m.conditional();
        c.when(a, |s| s.set("nope", Wire::lit(4, 5)));
        assert!(c.apply().is_err());
    }
}
