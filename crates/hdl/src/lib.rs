//! A PyRTL-flavoured datapath sketch builder.
//!
//! The paper's datapath sketches are written in PyRTL; this crate is the
//! equivalent Rust front end, lowering to the Oyster IR. It provides:
//!
//! - [`Module`]: declaration and statement builder producing an
//!   [`owl_oyster::Design`];
//! - [`Wire`]: a lightweight expression handle with operator overloading
//!   (`+`, `-`, `&`, `|`, `^`, `!`, `<<`, `>>`) and comparison/selection
//!   methods;
//! - [`Cond`]: PyRTL's `conditional_assignment` pattern, lowering `with
//!   cond:` blocks to if-then-else chains; and
//! - [`bitops`]: the RISC-V Zbkb/Zbkc bit-manipulation semantics (rotates,
//!   byte reversal, zip/unzip, pack, carry-less multiply) implemented
//!   generically so the same definitions serve datapath sketches and ILA
//!   specifications.
//!
//! # Examples
//!
//! ```
//! use owl_hdl::Module;
//!
//! let mut m = Module::new("adder");
//! let a = m.input("a", 8);
//! let b = m.input("b", 8);
//! m.output("sum", 8);
//! m.assign("sum", a + b);
//! let design = m.finish()?;
//! assert!(design.check().is_ok());
//! # Ok::<(), owl_oyster::OysterError>(())
//! ```

pub mod bitops;
mod cond;
mod module;

pub use cond::Cond;
pub use module::{Module, Wire};
