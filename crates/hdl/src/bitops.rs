//! RISC-V Zbkb/Zbkc bit-manipulation semantics, written once and shared.
//!
//! The same definitions must appear on both sides of the synthesis
//! problem — in the datapath sketch's ALU (over [`Wire`]) and in the ILA
//! specification (over [`SpecExpr`]) — so they are implemented generically
//! over the [`SynthExpr`] trait. Rotates use the shift-or construction
//! (widths must be powers of two), `clmul` unrolls the carry-less
//! product, and the permutation instructions are extract/concat networks.

use crate::module::Wire;
use owl_ila::SpecExpr;
use owl_oyster::Expr;
use std::fmt;

/// A bit-manipulation operator was asked to build at an unsupported
/// width.
///
/// Widths arrive from user-written sketches and ISA descriptions, so the
/// constructors report the violation instead of panicking; synthesis
/// front-ends surface it as an invalid-input error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WidthError {
    /// The operator that rejected the width.
    pub op: &'static str,
    /// The width that was requested.
    pub width: u32,
    /// What the operator requires of its width.
    pub requirement: &'static str,
}

impl fmt::Display for WidthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: width {} unsupported (requires {})", self.op, self.width, self.requirement)
    }
}

impl std::error::Error for WidthError {}

fn require(ok: bool, op: &'static str, width: u32, requirement: &'static str) -> Result<(), WidthError> {
    if ok {
        Ok(())
    } else {
        Err(WidthError { op, width, requirement })
    }
}

/// Expression languages the bit-manipulation library can target.
///
/// Conditions follow the "nonzero is true" convention in both worlds.
pub trait SynthExpr: Sized + Clone {
    /// A constant of the given width.
    fn lit(width: u32, value: u64) -> Self;
    /// Bitwise NOT.
    fn not_(self) -> Self;
    /// Bitwise AND.
    fn and_(self, rhs: Self) -> Self;
    /// Bitwise OR.
    fn or_(self, rhs: Self) -> Self;
    /// Bitwise XOR.
    fn xor_(self, rhs: Self) -> Self;
    /// Addition modulo `2^w`.
    fn add_(self, rhs: Self) -> Self;
    /// Subtraction modulo `2^w`.
    fn sub_(self, rhs: Self) -> Self;
    /// Arithmetic right shift.
    fn ashr_(self, rhs: Self) -> Self;
    /// Equality (1-bit result).
    fn eq_(self, rhs: Self) -> Self;
    /// Unsigned less-than (1-bit result).
    fn ult_(self, rhs: Self) -> Self;
    /// Signed less-than (1-bit result).
    fn slt_(self, rhs: Self) -> Self;
    /// Left shift.
    fn shl_(self, rhs: Self) -> Self;
    /// Logical right shift.
    fn lshr_(self, rhs: Self) -> Self;
    /// If-then-else on a (possibly wide) condition.
    fn ite_(cond: Self, then: Self, els: Self) -> Self;
    /// Bit extraction.
    fn extract_(self, high: u32, low: u32) -> Self;
    /// Concatenation (`self` high).
    fn concat_(self, low: Self) -> Self;
    /// Zero extension.
    fn zext_(self, width: u32) -> Self;
    /// Sign extension.
    fn sext_(self, width: u32) -> Self;
}

impl SynthExpr for Expr {
    fn lit(width: u32, value: u64) -> Self {
        Expr::const_u64(width, value)
    }
    fn not_(self) -> Self {
        self.not()
    }
    fn and_(self, rhs: Self) -> Self {
        self.and(rhs)
    }
    fn or_(self, rhs: Self) -> Self {
        self.or(rhs)
    }
    fn xor_(self, rhs: Self) -> Self {
        self.xor(rhs)
    }
    fn add_(self, rhs: Self) -> Self {
        self.add(rhs)
    }
    fn sub_(self, rhs: Self) -> Self {
        self.sub(rhs)
    }
    fn ashr_(self, rhs: Self) -> Self {
        Expr::binop(owl_oyster::BinOp::Ashr, self, rhs)
    }
    fn eq_(self, rhs: Self) -> Self {
        self.eq(rhs)
    }
    fn ult_(self, rhs: Self) -> Self {
        Expr::binop(owl_oyster::BinOp::Ult, self, rhs)
    }
    fn slt_(self, rhs: Self) -> Self {
        Expr::binop(owl_oyster::BinOp::Slt, self, rhs)
    }
    fn shl_(self, rhs: Self) -> Self {
        Expr::binop(owl_oyster::BinOp::Shl, self, rhs)
    }
    fn lshr_(self, rhs: Self) -> Self {
        Expr::binop(owl_oyster::BinOp::Lshr, self, rhs)
    }
    fn ite_(cond: Self, then: Self, els: Self) -> Self {
        Expr::ite(cond, then, els)
    }
    fn extract_(self, high: u32, low: u32) -> Self {
        self.extract(high, low)
    }
    fn concat_(self, low: Self) -> Self {
        self.concat(low)
    }
    fn zext_(self, width: u32) -> Self {
        self.zext(width)
    }
    fn sext_(self, width: u32) -> Self {
        self.sext(width)
    }
}

impl SynthExpr for SpecExpr {
    fn lit(width: u32, value: u64) -> Self {
        SpecExpr::const_u64(width, value)
    }
    fn not_(self) -> Self {
        self.not()
    }
    fn and_(self, rhs: Self) -> Self {
        self.and(rhs)
    }
    fn or_(self, rhs: Self) -> Self {
        self.or(rhs)
    }
    fn xor_(self, rhs: Self) -> Self {
        self.xor(rhs)
    }
    fn add_(self, rhs: Self) -> Self {
        self.add(rhs)
    }
    fn sub_(self, rhs: Self) -> Self {
        self.sub(rhs)
    }
    fn ashr_(self, rhs: Self) -> Self {
        self.ashr(rhs)
    }
    fn eq_(self, rhs: Self) -> Self {
        self.eq(rhs)
    }
    fn ult_(self, rhs: Self) -> Self {
        self.ult(rhs)
    }
    fn slt_(self, rhs: Self) -> Self {
        self.slt(rhs)
    }
    fn shl_(self, rhs: Self) -> Self {
        self.shl(rhs)
    }
    fn lshr_(self, rhs: Self) -> Self {
        self.lshr(rhs)
    }
    fn ite_(cond: Self, then: Self, els: Self) -> Self {
        SpecExpr::ite(cond, then, els)
    }
    fn extract_(self, high: u32, low: u32) -> Self {
        self.extract(high, low)
    }
    fn concat_(self, low: Self) -> Self {
        self.concat(low)
    }
    fn zext_(self, width: u32) -> Self {
        self.zext(width)
    }
    fn sext_(self, width: u32) -> Self {
        self.sext(width)
    }
}

impl SynthExpr for Wire {
    fn lit(width: u32, value: u64) -> Self {
        Wire::lit(width, value)
    }
    fn not_(self) -> Self {
        !self
    }
    fn and_(self, rhs: Self) -> Self {
        self & rhs
    }
    fn or_(self, rhs: Self) -> Self {
        self | rhs
    }
    fn xor_(self, rhs: Self) -> Self {
        self ^ rhs
    }
    fn add_(self, rhs: Self) -> Self {
        self + rhs
    }
    fn sub_(self, rhs: Self) -> Self {
        self - rhs
    }
    fn ashr_(self, rhs: Self) -> Self {
        self.shr_arith(rhs)
    }
    fn eq_(self, rhs: Self) -> Self {
        self.eq(rhs)
    }
    fn ult_(self, rhs: Self) -> Self {
        self.lt_u(rhs)
    }
    fn slt_(self, rhs: Self) -> Self {
        self.lt_s(rhs)
    }
    fn shl_(self, rhs: Self) -> Self {
        self << rhs
    }
    fn lshr_(self, rhs: Self) -> Self {
        self >> rhs
    }
    fn ite_(cond: Self, then: Self, els: Self) -> Self {
        cond.select(then, els)
    }
    fn extract_(self, high: u32, low: u32) -> Self {
        self.bits(high, low)
    }
    fn concat_(self, low: Self) -> Self {
        self.concat(low)
    }
    fn zext_(self, width: u32) -> Self {
        self.zext(width)
    }
    fn sext_(self, width: u32) -> Self {
        self.sext(width)
    }
}

/// Rotate left by a variable count (`rol`). `width` must be a power of
/// two.
///
/// # Errors
///
/// Returns [`WidthError`] if `width` is not a power of two.
pub fn rol<E: SynthExpr>(x: E, count: E, width: u32) -> Result<E, WidthError> {
    require(width.is_power_of_two(), "rol", width, "a power-of-two width")?;
    let mask = E::lit(width, u64::from(width - 1));
    let w = E::lit(width, u64::from(width));
    let m = count.and_(mask.clone());
    let left = x.clone().shl_(m.clone());
    let back = w.sub_(m).and_(mask);
    let right = x.lshr_(back);
    Ok(left.or_(right))
}

/// Rotate right by a variable count (`ror`/`rori`). `width` must be a
/// power of two.
///
/// # Errors
///
/// Returns [`WidthError`] if `width` is not a power of two.
pub fn ror<E: SynthExpr>(x: E, count: E, width: u32) -> Result<E, WidthError> {
    require(width.is_power_of_two(), "ror", width, "a power-of-two width")?;
    let mask = E::lit(width, u64::from(width - 1));
    let w = E::lit(width, u64::from(width));
    let m = count.and_(mask.clone());
    let right = x.clone().lshr_(m.clone());
    let back = w.sub_(m).and_(mask);
    let left = x.shl_(back);
    Ok(left.or_(right))
}

/// AND with inverted operand (`andn`).
pub fn andn<E: SynthExpr>(x: E, y: E) -> E {
    x.and_(y.not_())
}

/// OR with inverted operand (`orn`).
pub fn orn<E: SynthExpr>(x: E, y: E) -> E {
    x.or_(y.not_())
}

/// Exclusive-NOR (`xnor`).
pub fn xnor<E: SynthExpr>(x: E, y: E) -> E {
    x.xor_(y).not_()
}

/// Byte-order reversal (`rev8`).
///
/// # Errors
///
/// Returns [`WidthError`] if `width` is zero or not a multiple of 8.
pub fn rev8<E: SynthExpr>(x: E, width: u32) -> Result<E, WidthError> {
    require(width > 0 && width.is_multiple_of(8), "rev8", width, "a nonzero byte-multiple width")?;
    let nbytes = width / 8;
    let mut acc = x.clone().extract_(7, 0);
    for b in 1..nbytes {
        acc = acc.concat_(x.clone().extract_(b * 8 + 7, b * 8));
    }
    Ok(acc)
}

/// Bit reversal within each byte (`brev8` / `rev.b`).
///
/// # Errors
///
/// Returns [`WidthError`] if `width` is zero or not a multiple of 8.
pub fn brev8<E: SynthExpr>(x: E, width: u32) -> Result<E, WidthError> {
    require(width > 0 && width.is_multiple_of(8), "brev8", width, "a nonzero byte-multiple width")?;
    // The first emitted bit is the lowest bit of the top byte.
    let start = width - 8;
    let mut acc = x.clone().extract_(start, start);
    for b in (0..width / 8).rev() {
        for i in b * 8..b * 8 + 8 {
            if i == start && b == width / 8 - 1 {
                continue;
            }
            acc = acc.concat_(x.clone().extract_(i, i));
        }
    }
    Ok(acc)
}

/// Interleave lower and upper halves (`zip`): output bit `2i` is input
/// bit `i`, output bit `2i+1` is input bit `i + width/2`.
///
/// # Errors
///
/// Returns [`WidthError`] if `width` is zero or odd.
pub fn zip<E: SynthExpr>(x: E, width: u32) -> Result<E, WidthError> {
    require(width > 0 && width.is_multiple_of(2), "zip", width, "a nonzero even width")?;
    let half = width / 2;
    let src = |i: u32| if i.is_multiple_of(2) { i / 2 } else { i / 2 + half };
    let mut acc = x.clone().extract_(src(width - 1), src(width - 1));
    for i in (0..width - 1).rev() {
        let s = src(i);
        acc = acc.concat_(x.clone().extract_(s, s));
    }
    Ok(acc)
}

/// De-interleave (`unzip`): even bits to the lower half, odd bits to the
/// upper half. Inverse of [`zip`].
///
/// # Errors
///
/// Returns [`WidthError`] if `width` is zero or odd.
pub fn unzip<E: SynthExpr>(x: E, width: u32) -> Result<E, WidthError> {
    require(width > 0 && width.is_multiple_of(2), "unzip", width, "a nonzero even width")?;
    let half = width / 2;
    let src = |j: u32| if j < half { 2 * j } else { 2 * (j - half) + 1 };
    let mut acc = x.clone().extract_(src(width - 1), src(width - 1));
    for j in (0..width - 1).rev() {
        let s = src(j);
        acc = acc.concat_(x.clone().extract_(s, s));
    }
    Ok(acc)
}

/// Pack lower halves (`pack`): result's low half is `x`'s, high half is
/// `y`'s.
///
/// # Errors
///
/// Returns [`WidthError`] if `width` is zero or odd.
pub fn pack<E: SynthExpr>(x: E, y: E, width: u32) -> Result<E, WidthError> {
    require(width > 0 && width.is_multiple_of(2), "pack", width, "a nonzero even width")?;
    let half = width / 2;
    Ok(y.extract_(half - 1, 0).concat_(x.extract_(half - 1, 0)))
}

/// Pack low bytes zero-extended (`packh`).
///
/// # Errors
///
/// Returns [`WidthError`] if `width` is below 16 bits.
pub fn packh<E: SynthExpr>(x: E, y: E, width: u32) -> Result<E, WidthError> {
    require(width >= 16, "packh", width, "a width of at least 16")?;
    Ok(y.extract_(7, 0).concat_(x.extract_(7, 0)).zext_(width))
}

/// Carry-less multiply, low word (`clmul`): unrolled xor of conditional
/// shifts.
///
/// # Errors
///
/// Returns [`WidthError`] if `width` is zero.
pub fn clmul<E: SynthExpr>(x: E, y: E, width: u32) -> Result<E, WidthError> {
    require(width > 0, "clmul", width, "a nonzero width")?;
    let mut acc = E::lit(width, 0);
    for i in 0..width {
        let bit = y.clone().extract_(i, i);
        let shifted = x.clone().shl_(E::lit(width, u64::from(i)));
        let term = E::ite_(bit, shifted, E::lit(width, 0));
        acc = acc.xor_(term);
    }
    Ok(acc)
}

/// Carry-less multiply, high word (`clmulh`): the upper `width` bits of
/// the `2*width`-bit carry-less product.
///
/// # Errors
///
/// Returns [`WidthError`] if `width` is zero.
pub fn clmulh<E: SynthExpr>(x: E, y: E, width: u32) -> Result<E, WidthError> {
    require(width > 0, "clmulh", width, "a nonzero width")?;
    let wide = 2 * width;
    let xw = x.zext_(wide);
    let mut acc = E::lit(wide, 0);
    for i in 0..width {
        let bit = y.clone().extract_(i, i);
        let shifted = xw.clone().shl_(E::lit(wide, u64::from(i)));
        let term = E::ite_(bit, shifted, E::lit(wide, 0));
        acc = acc.xor_(term);
    }
    Ok(acc.extract_(wide - 1, width))
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_bitvec::BitVec;
    use owl_oyster::{Design, Interpreter};
    use std::collections::HashMap;

    /// Evaluates `f(x, y)` as a 32-bit Oyster design over concrete inputs.
    fn run(f: impl Fn(Expr, Expr) -> Expr, x: u64, y: u64) -> u64 {
        let mut d = Design::new("t");
        d.input("x", 32).input("y", 32).output("o", 32);
        d.assign("o", f(Expr::var("x"), Expr::var("y")));
        d.check().expect("valid design");
        let mut sim = Interpreter::new(&d).unwrap();
        let inputs: HashMap<String, BitVec> = [
            ("x".to_string(), BitVec::from_u64(32, x)),
            ("y".to_string(), BitVec::from_u64(32, y)),
        ]
        .into();
        sim.step(&inputs).unwrap().outputs["o"].to_u64().unwrap()
    }

    const SAMPLES: &[(u64, u64)] = &[
        (0, 0),
        (1, 1),
        (0xDEAD_BEEF, 3),
        (0x8000_0001, 31),
        (0x1234_5678, 0xFFFF_FFFF),
        (0xFFFF_FFFF, 0x55AA_33CC),
        (0x0F0F_0F0F, 0x1F),
        (0xCAFE_BABE, 0x40), // rotate counts are masked mod 32
    ];

    #[test]
    fn rotates_match_bitvec() {
        for &(x, y) in SAMPLES {
            let bx = BitVec::from_u64(32, x);
            let by = BitVec::from_u64(32, y);
            assert_eq!(
                run(|a, b| rol(a, b, 32).unwrap(), x, y),
                bx.rol(&by).to_u64().unwrap(),
                "rol({x:#x}, {y:#x})"
            );
            assert_eq!(
                run(|a, b| ror(a, b, 32).unwrap(), x, y),
                bx.ror(&by).to_u64().unwrap(),
                "ror({x:#x}, {y:#x})"
            );
        }
    }

    #[test]
    fn logic_with_negate_matches_bitvec() {
        for &(x, y) in SAMPLES {
            let bx = BitVec::from_u64(32, x);
            let by = BitVec::from_u64(32, y);
            assert_eq!(run(andn, x, y), bx.and(&by.not()).to_u64().unwrap());
            assert_eq!(run(orn, x, y), bx.or(&by.not()).to_u64().unwrap());
            assert_eq!(run(xnor, x, y), bx.xor(&by).not().to_u64().unwrap());
        }
    }

    #[test]
    fn byte_permutations_match_bitvec() {
        for &(x, _) in SAMPLES {
            let bx = BitVec::from_u64(32, x);
            assert_eq!(run(|a, _| rev8(a, 32).unwrap(), x, 0), bx.rev8().to_u64().unwrap());
            assert_eq!(run(|a, _| brev8(a, 32).unwrap(), x, 0), bx.brev8().to_u64().unwrap());
            assert_eq!(run(|a, _| zip(a, 32).unwrap(), x, 0), bx.zip().to_u64().unwrap(), "zip {x:#x}");
            assert_eq!(run(|a, _| unzip(a, 32).unwrap(), x, 0), bx.unzip().to_u64().unwrap());
        }
    }

    #[test]
    fn packs_match_bitvec() {
        for &(x, y) in SAMPLES {
            let bx = BitVec::from_u64(32, x);
            let by = BitVec::from_u64(32, y);
            assert_eq!(run(|a, b| pack(a, b, 32).unwrap(), x, y), bx.pack(&by).to_u64().unwrap());
            assert_eq!(run(|a, b| packh(a, b, 32).unwrap(), x, y), bx.packh(&by).to_u64().unwrap());
        }
    }

    #[test]
    fn clmul_matches_bitvec() {
        for &(x, y) in SAMPLES {
            let bx = BitVec::from_u64(32, x);
            let by = BitVec::from_u64(32, y);
            assert_eq!(
                run(|a, b| clmul(a, b, 32).unwrap(), x, y),
                bx.clmul(&by).to_u64().unwrap(),
                "clmul({x:#x}, {y:#x})"
            );
            assert_eq!(
                run(|a, b| clmulh(a, b, 32).unwrap(), x, y),
                bx.clmulh(&by).to_u64().unwrap(),
                "clmulh({x:#x}, {y:#x})"
            );
        }
    }

    #[test]
    fn spec_expr_instantiation_compiles() {
        // The same generic definitions instantiate over SpecExpr.
        let x = SpecExpr::var("x");
        let y = SpecExpr::var("y");
        let _ = rol(x.clone(), y.clone(), 32).unwrap();
        let _ = clmul(x.clone(), y.clone(), 32).unwrap();
        let _ = rev8(x, 32).unwrap();
    }

    #[test]
    fn bad_widths_are_typed_errors_not_panics() {
        let x = || SpecExpr::var("x");
        let y = || SpecExpr::var("y");
        assert!(rol(x(), y(), 5).is_err());
        assert!(ror(x(), y(), 0).is_err());
        assert!(rev8(x(), 12).is_err());
        assert!(rev8(x(), 0).is_err()); // 0 is a byte multiple but has no bytes
        assert!(brev8(x(), 0).is_err());
        assert!(zip(x(), 7).is_err());
        assert!(zip(x(), 0).is_err());
        assert!(unzip(x(), 0).is_err());
        assert!(pack(x(), y(), 3).is_err());
        assert!(packh(x(), y(), 8).is_err());
        assert!(clmul(x(), y(), 0).is_err());
        assert!(clmulh(x(), y(), 0).is_err());
        let e = packh(x(), y(), 8).unwrap_err();
        assert_eq!(e.op, "packh");
        assert_eq!(e.width, 8);
        assert!(e.to_string().contains("width 8 unsupported"));
    }
}
