//! Extended HDL-builder tests: the lowered designs behave like their
//! PyRTL counterparts under simulation.

use owl_bitvec::BitVec;
use owl_hdl::{Module, Wire};
use owl_oyster::Interpreter;
use std::collections::HashMap;

fn step(sim: &mut Interpreter<'_>, pairs: &[(&str, u32, u64)]) -> HashMap<String, BitVec> {
    let inputs: HashMap<String, BitVec> =
        pairs.iter().map(|&(n, w, v)| (n.to_string(), BitVec::from_u64(w, v))).collect();
    sim.step(&inputs).unwrap().outputs
}

#[test]
fn rom_builder_and_reads() {
    let mut m = Module::new("rom");
    let a = m.input("a", 2);
    m.rom("t", 2, 8, (0..4).map(|i| BitVec::from_u64(8, i * 3)).collect());
    m.output("o", 8);
    let r = m.read("t", a);
    m.assign("o", r);
    let d = m.finish().unwrap();
    let mut sim = Interpreter::new(&d).unwrap();
    assert_eq!(step(&mut sim, &[("a", 2, 2)])["o"].to_u64(), Some(6));
}

#[test]
fn deeply_nested_conditionals() {
    // with a: { with b: r = 1; otherwise: { with c: r = 2; otherwise: r = 3 } }
    let mut m = Module::new("deep");
    let a = m.input("a", 1);
    let b = m.input("b", 1);
    let c = m.input("c", 1);
    m.register("r", 4);
    let mut cond = m.conditional();
    cond.when(a, |s| {
        s.when(b, |s2| s2.set("r", Wire::lit(4, 1)));
        s.otherwise(|s2| {
            s2.when(c, |s3| s3.set("r", Wire::lit(4, 2)));
            s2.otherwise(|s3| s3.set("r", Wire::lit(4, 3)));
        });
    });
    cond.apply().unwrap();
    let d = m.finish().unwrap();
    let mut sim = Interpreter::new(&d).unwrap();
    for (av, bv, cv, want) in [
        (1u64, 1u64, 0u64, 1u64),
        (1, 0, 1, 2),
        (1, 0, 0, 3),
    ] {
        step(&mut sim, &[("a", 1, av), ("b", 1, bv), ("c", 1, cv)]);
        assert_eq!(sim.reg("r").unwrap().to_u64(), Some(want), "a={av} b={bv} c={cv}");
    }
    // a == 0: register holds its last value.
    let before = sim.reg("r").unwrap().clone();
    step(&mut sim, &[("a", 1, 0), ("b", 1, 1), ("c", 1, 1)]);
    assert_eq!(sim.reg("r").unwrap(), &before);
}

#[test]
fn wire_comparison_helpers() {
    let mut m = Module::new("cmp");
    let a = m.input("a", 8);
    let b = m.input("b", 8);
    m.output("ge_u", 1);
    m.output("ge_s", 1);
    m.output("le_u", 1);
    m.assign("ge_u", a.ge_u(b.clone()));
    m.assign("ge_s", a.ge_s(b.clone()));
    m.assign("le_u", a.le_u(b.clone()));
    let d = m.finish().unwrap();
    let mut sim = Interpreter::new(&d).unwrap();
    // a = 0xFF (-1 signed), b = 1.
    let out = step(&mut sim, &[("a", 8, 0xFF), ("b", 8, 1)]);
    assert_eq!(out["ge_u"].to_u64(), Some(1));
    assert_eq!(out["ge_s"].to_u64(), Some(0));
    assert_eq!(out["le_u"].to_u64(), Some(0));
}

#[test]
fn bit_and_concat_helpers() {
    let mut m = Module::new("bits");
    let a = m.input("a", 8);
    m.output("top", 1);
    m.output("swapped", 8);
    m.assign("top", a.bit(7));
    m.assign("swapped", a.bits(3, 0).concat(a.bits(7, 4)));
    let d = m.finish().unwrap();
    let mut sim = Interpreter::new(&d).unwrap();
    let out = step(&mut sim, &[("a", 8, 0xA5)]);
    assert_eq!(out["top"].to_u64(), Some(1));
    assert_eq!(out["swapped"].to_u64(), Some(0x5A));
}

#[test]
fn conditional_write_with_explicit_and_guard() {
    // Mixing a `with` guard and an inner condition on the data.
    let mut m = Module::new("gw");
    let en = m.input("en", 1);
    let sel = m.input("sel", 1);
    let v = m.input("v", 8);
    m.memory("mem", 1, 8);
    let mut c = m.conditional();
    c.when(en, |s| {
        s.write("mem", Wire::lit(1, 0), v.clone());
        s.when(sel, |s2| s2.write("mem", Wire::lit(1, 1), v.clone()));
    });
    c.apply().unwrap();
    let d = m.finish().unwrap();
    let mut sim = Interpreter::new(&d).unwrap();
    step(&mut sim, &[("en", 1, 1), ("sel", 1, 0), ("v", 8, 0x11)]);
    assert_eq!(sim.mem("mem").unwrap().read(0).to_u64(), Some(0x11));
    assert_eq!(sim.mem("mem").unwrap().read(1).to_u64(), Some(0));
    step(&mut sim, &[("en", 1, 1), ("sel", 1, 1), ("v", 8, 0x22)]);
    assert_eq!(sim.mem("mem").unwrap().read(1).to_u64(), Some(0x22));
    step(&mut sim, &[("en", 1, 0), ("sel", 1, 1), ("v", 8, 0x33)]);
    assert_eq!(sim.mem("mem").unwrap().read(0).to_u64(), Some(0x22));
}
