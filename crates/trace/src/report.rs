//! The unified reporting API: a stable key/value schema every stats
//! struct in the workspace renders into, plus one JSON serializer.
//!
//! Historically each layer had its own stats struct (`QueryStats`,
//! `SynthesisStats`, `ServiceMetrics`, `CacheStats`) and every consumer
//! hand-rolled its own serialization. The [`Report`] trait replaces
//! that: a struct renders itself into a [`Section`] — an *ordered* list
//! of `(key, Value)` fields, where a value may itself be a nested
//! section or a list — and [`to_json`] serializes any section the same
//! way. Field order is preserved exactly as written, so reports are
//! byte-stable across runs and diffs stay readable.

/// A value in a report: scalar, string, list, or nested section.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned counter (the common case for stats).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float; non-finite values serialize as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered list.
    List(Vec<Value>),
    /// A nested section.
    Section(Section),
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Section> for Value {
    fn from(v: Section) -> Self {
        Value::Section(v)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(v)
    }
}
impl From<Vec<Section>> for Value {
    fn from(v: Vec<Section>) -> Self {
        Value::List(v.into_iter().map(Value::Section).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

/// An ordered set of named fields — the unit of reporting.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Section {
    fields: Vec<(String, Value)>,
}

impl Section {
    /// An empty section.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends (or replaces) a field, preserving insertion order.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Value>) -> &mut Self {
        let key = key.into();
        let value = value.into();
        if let Some(slot) = self.fields.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.fields.push((key, value));
        }
        self
    }

    /// Builder-style [`Section::set`].
    #[must_use]
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.set(key, value);
        self
    }

    /// Looks a field up by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The fields in insertion order.
    #[must_use]
    pub fn fields(&self) -> &[(String, Value)] {
        &self.fields
    }

    /// True when the section has no fields.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

/// The unified reporting trait: render this struct's observable state
/// as an ordered [`Section`]. Implemented by every stats surface in the
/// workspace (`QueryStats`, `SynthesisStats`, `ServiceMetrics`,
/// `CacheStats`, solver `Stats`, `VerifyStats`), so one serializer
/// handles them all and schema changes happen in exactly one place per
/// struct.
pub trait Report {
    /// The struct's fields as a section. Keys are stable identifiers
    /// (snake_case); nested structs become nested sections.
    fn report(&self) -> Section;
}

impl<T: Report> Report for &T {
    fn report(&self) -> Section {
        (**self).report()
    }
}

/// Serializes a section as pretty-printed JSON (2-space indent,
/// trailing newline), preserving field order.
#[must_use]
pub fn to_json(section: &Section) -> String {
    let mut out = String::new();
    write_section(&mut out, section, 0, true);
    out.push('\n');
    out
}

/// Serializes a section as single-line JSON (the JSONL form).
#[must_use]
pub fn to_json_compact(section: &Section) -> String {
    let mut out = String::new();
    write_section(&mut out, section, 0, false);
    out
}

fn write_section(out: &mut String, section: &Section, depth: usize, pretty: bool) {
    if section.fields.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (key, value)) in section.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, depth + 1, pretty);
        out.push_str(&json_string(key));
        out.push(':');
        if pretty {
            out.push(' ');
        }
        write_value(out, value, depth + 1, pretty);
    }
    newline_indent(out, depth, pretty);
    out.push('}');
}

fn write_value(out: &mut String, value: &Value, depth: usize, pretty: bool) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            let _ = std::fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Value::I64(n) => {
            let _ = std::fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Value::F64(x) => {
            if x.is_finite() {
                let _ = std::fmt::Write::write_fmt(out, format_args!("{x}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => out.push_str(&json_string(s)),
        Value::List(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, depth + 1, pretty);
                write_value(out, item, depth + 1, pretty);
            }
            newline_indent(out, depth, pretty);
            out.push(']');
        }
        Value::Section(s) => write_section(out, s, depth, pretty),
    }
}

fn newline_indent(out: &mut String, depth: usize, pretty: bool) {
    if pretty {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(&mut out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_preserves_insertion_order_and_replaces() {
        let mut s = Section::new();
        s.set("b", 1u64).set("a", 2u64).set("b", 3u64);
        let keys: Vec<&str> = s.fields().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["b", "a"]);
        assert_eq!(s.get("b"), Some(&Value::U64(3)));
        assert_eq!(s.get("missing"), None);
    }

    #[test]
    fn json_round_trips_common_shapes() {
        let s = Section::new()
            .with("name", "rv32i \"base\"")
            .with("solved", true)
            .with("calls", 42u64)
            .with("delta", -3i64)
            .with("wall", 1.5f64)
            .with("bad", f64::NAN)
            .with("note", Value::Null)
            .with("nested", Section::new().with("hits", 7u64))
            .with("list", vec![Value::U64(1), Value::U64(2)])
            .with("empty_list", Vec::<Value>::new())
            .with("empty_sec", Section::new());
        let json = to_json(&s);
        assert!(json.contains("\"name\": \"rv32i \\\"base\\\"\""));
        assert!(json.contains("\"solved\": true"));
        assert!(json.contains("\"calls\": 42"));
        assert!(json.contains("\"delta\": -3"));
        assert!(json.contains("\"wall\": 1.5"));
        assert!(json.contains("\"bad\": null"));
        assert!(json.contains("\"note\": null"));
        assert!(json.contains("\"hits\": 7"));
        assert!(json.contains("\"empty_list\": []"));
        assert!(json.contains("\"empty_sec\": {}"));
        assert!(json.ends_with("}\n"));
        // Compact form is one line.
        assert!(!to_json_compact(&s).contains('\n'));
    }

    #[test]
    fn option_converts_to_null_or_value() {
        assert_eq!(Value::from(None::<String>), Value::Null);
        assert_eq!(Value::from(Some("x")), Value::Str("x".into()));
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(json_string("a\x01b\tc"), "\"a\\u0001b\\tc\"");
    }

    #[test]
    fn report_is_object_safe_enough_for_references() {
        struct S;
        impl Report for S {
            fn report(&self) -> Section {
                Section::new().with("x", 1u64)
            }
        }
        fn takes_report(r: impl Report) -> Section {
            r.report()
        }
        assert_eq!(takes_report(&S).get("x"), Some(&Value::U64(1)));
    }
}
