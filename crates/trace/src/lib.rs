//! Structured observability for the OWL toolchain: spans, counters,
//! and one unified reporting API.
//!
//! The synthesis stack spans five layers — CDCL search (`owl-sat`),
//! query compilation (`owl-smt`), the CEGIS session scheduler
//! (`owl-core`), the multi-session service (`owl-service`), and the
//! result cache (`owl-cache`) — and each historically reported its
//! behaviour through a bespoke stats struct and ad-hoc `eprintln!`s.
//! This crate replaces that with two primitives:
//!
//! - a [`Tracer`] handle (cheap `Arc` clone, a no-op when disabled)
//!   collecting **spans** (named intervals with a layer, a parent, and
//!   wall-clock bounds) and **counters** (monotonic `u64` accumulators)
//!   into a bounded in-memory ring buffer, exportable as JSONL or as a
//!   Chrome `chrome://tracing` / Perfetto trace-event file; and
//! - a [`Report`] trait (`fn report(&self) -> Section`) that every
//!   stats struct in the workspace implements, so one serializer
//!   ([`to_json`]) renders them all — nested sections included.
//!
//! # Determinism contract
//!
//! Tracing is *inert*: attaching a tracer never changes a synthesis
//! run's observable output (`SynthesisOutput`, `Certificate`, journal,
//! cache contents) at any parallelism, because instrumentation only
//! observes — it never draws from a `FaultPlan`, never perturbs
//! scheduling, and never fails a run (a full ring buffer drops the
//! oldest events and counts them in [`TraceSnapshot::dropped`]).
//!
//! The trace itself is deterministic in everything except wall-clock:
//! span ids, parents, layers, names, thread numbering, and counter
//! totals are pure functions of the (deterministic) execution, while
//! the `*_ns` timestamp fields are isolated so tests can zero them
//! ([`TraceSnapshot::zeroed_clock`]) and compare two runs structurally.
//! At parallelism 1 the full event sequence is reproducible; at higher
//! parallelism events from different workers interleave by wall-clock,
//! but per-key counter totals still agree run to run.
//!
//! # Example
//!
//! ```
//! use owl_trace::Tracer;
//!
//! let tracer = Tracer::enabled();
//! {
//!     let _solve = tracer.span("sat", "solve");
//!     tracer.count("sat", "conflicts", 42);
//! }
//! let snap = tracer.snapshot();
//! assert_eq!(snap.spans().count(), 1);
//! snap.check_well_formed().unwrap();
//! let mut chrome = Vec::new();
//! tracer.write_chrome_trace(&mut chrome).unwrap();
//! ```

pub mod report;

pub use report::{to_json, Report, Section, Value};

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default ring-buffer capacity (events retained before drop-oldest).
const DEFAULT_CAPACITY: usize = 1 << 16;

/// One closed span: a named interval of work within a layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Unique id, allocated at span *open* — so a parent's id is always
    /// smaller than its children's even though spans are recorded (and
    /// therefore ring-ordered) at close.
    pub id: u64,
    /// The enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// The layer (crate) that emitted the span: `"sat"`, `"smt"`,
    /// `"egraph"`, `"core"`, `"service"`, `"cache"`, `"bench"`.
    pub layer: &'static str,
    /// The span name, e.g. `"solve"` or `"task:ADD"`.
    pub name: String,
    /// Dense per-tracer thread number (0 = first thread seen).
    pub thread: u64,
    /// Wall-clock start, nanoseconds since the tracer's epoch. The only
    /// nondeterministic fields of a span are `start_ns` and `dur_ns`.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
}

/// One counter observation: the cumulative total after a delta landed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// The emitting layer.
    pub layer: &'static str,
    /// The counter name, e.g. `"conflicts"`.
    pub name: String,
    /// Cumulative total for `(layer, name)` after this delta. Totals
    /// are monotonic: samples for one key never decrease in ring order.
    pub total: u64,
    /// Dense per-tracer thread number.
    pub thread: u64,
    /// Wall-clock time of the observation (nondeterministic field).
    pub at_ns: u64,
}

/// One instant event: a point-in-time marker (a shed job, a budget stop).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Moment {
    /// The emitting layer.
    pub layer: &'static str,
    /// The marker name, e.g. `"stop:deadline"`.
    pub name: String,
    /// Dense per-tracer thread number.
    pub thread: u64,
    /// Wall-clock time of the marker (nondeterministic field).
    pub at_ns: u64,
}

/// An entry of the trace ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A closed span.
    Span(Span),
    /// A counter observation.
    Counter(CounterSample),
    /// An instant marker.
    Instant(Moment),
}

struct State {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    /// Cumulative counter totals, ordered for deterministic export.
    counters: BTreeMap<(&'static str, String), u64>,
    /// Dense thread numbering in first-seen order.
    threads: HashMap<std::thread::ThreadId, u64>,
}

struct Inner {
    /// Distinguishes tracers on the shared thread-local span stack.
    tracer_id: u64,
    epoch: Instant,
    next_span: AtomicU64,
    state: Mutex<State>,
}

static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Open-span stack per thread: (tracer id, span id) pairs. A span's
    /// parent is the innermost open span of the *same tracer* on the
    /// *same thread*; cross-thread task spans are deliberate roots.
    static SPAN_STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// The tracing handle. Cloning is cheap (an `Arc` bump) and every clone
/// feeds the same buffer; the disabled tracer (the [`Default`]) makes
/// every operation a no-op, so instrumented code pays one branch when
/// tracing is off.
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<Inner>>);

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => f.write_str("Tracer(disabled)"),
            Some(inner) => write!(f, "Tracer(id={})", inner.tracer_id),
        }
    }
}

impl Tracer {
    /// The no-op tracer: every span/counter call returns immediately.
    #[must_use]
    pub fn disabled() -> Self {
        Tracer(None)
    }

    /// An enabled tracer with the default ring capacity.
    #[must_use]
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// An enabled tracer retaining at most `capacity` events (oldest
    /// dropped first; the drop count is reported in the snapshot).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer(Some(Arc::new(Inner {
            tracer_id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            next_span: AtomicU64::new(1),
            state: Mutex::new(State {
                ring: VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
                counters: BTreeMap::new(),
                threads: HashMap::new(),
            }),
        })))
    }

    /// True when this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Opens a span; the returned guard records it when dropped. The
    /// parent is the innermost span already open on this thread (from
    /// this tracer), so nesting follows lexical scope.
    #[must_use]
    pub fn span(&self, layer: &'static str, name: impl Into<String>) -> SpanGuard {
        let Some(inner) = &self.0 else {
            return SpanGuard { tracer: None, id: 0, start: None, layer, name: String::new() };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        SPAN_STACK.with(|s| s.borrow_mut().push((inner.tracer_id, id)));
        SpanGuard {
            tracer: Some(inner.clone()),
            id,
            start: Some(Instant::now()),
            layer,
            name: name.into(),
        }
    }

    /// Records an already-timed interval as a parentless span — for
    /// durations whose start predates the instrumented scope, like a
    /// job's queue wait. `started` is clamped to the tracer's epoch.
    pub fn span_from(&self, layer: &'static str, name: impl Into<String>, started: Instant) {
        let Some(inner) = &self.0 else { return };
        let now = Instant::now();
        let start_ns = ns_since(inner.epoch, started);
        let end_ns = ns_since(inner.epoch, now);
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        let span = Span {
            id,
            parent: None,
            layer,
            name: name.into(),
            thread: 0,
            start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
        };
        let mut st = inner.state.lock().unwrap();
        let thread = thread_number(&mut st);
        push_event(&mut st, TraceEvent::Span(Span { thread, ..span }));
    }

    /// Adds `delta` to the `(layer, name)` counter and records the new
    /// cumulative total. Zero deltas are skipped (no event).
    pub fn count(&self, layer: &'static str, name: &str, delta: u64) {
        let Some(inner) = &self.0 else { return };
        if delta == 0 {
            return;
        }
        let at_ns = ns_since(inner.epoch, Instant::now());
        let mut st = inner.state.lock().unwrap();
        let total = {
            let slot = st.counters.entry((layer, name.to_string())).or_insert(0);
            *slot = slot.saturating_add(delta);
            *slot
        };
        let thread = thread_number(&mut st);
        push_event(
            &mut st,
            TraceEvent::Counter(CounterSample { layer, name: name.to_string(), total, thread, at_ns }),
        );
    }

    /// Records a point-in-time marker.
    pub fn instant(&self, layer: &'static str, name: impl Into<String>) {
        let Some(inner) = &self.0 else { return };
        let at_ns = ns_since(inner.epoch, Instant::now());
        let mut st = inner.state.lock().unwrap();
        let thread = thread_number(&mut st);
        push_event(&mut st, TraceEvent::Instant(Moment { layer, name: name.into(), thread, at_ns }));
    }

    /// A copy of everything recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> TraceSnapshot {
        let Some(inner) = &self.0 else {
            return TraceSnapshot { events: Vec::new(), dropped: 0, totals: Vec::new() };
        };
        let st = inner.state.lock().unwrap();
        TraceSnapshot {
            events: st.ring.iter().cloned().collect(),
            dropped: st.dropped,
            totals: st
                .counters
                .iter()
                .map(|((layer, name), total)| (*layer, name.clone(), *total))
                .collect(),
        }
    }

    /// Writes the buffer as JSON Lines: one event object per line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_jsonl(&self, w: &mut impl Write) -> io::Result<()> {
        self.snapshot().write_jsonl(w)
    }

    /// Writes the buffer in the Chrome trace-event format (an object
    /// with a `traceEvents` array), loadable in `chrome://tracing` or
    /// [Perfetto](https://ui.perfetto.dev). Spans become complete
    /// (`"ph":"X"`) events, counters become `"ph":"C"` events, and
    /// markers become instant (`"ph":"i"`) events; the layer is the
    /// event category.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_chrome_trace(&self, w: &mut impl Write) -> io::Result<()> {
        self.snapshot().write_chrome_trace(w)
    }
}

/// RAII guard for an open span; records the span when dropped.
pub struct SpanGuard {
    tracer: Option<Arc<Inner>>,
    id: u64,
    start: Option<Instant>,
    layer: &'static str,
    name: String,
}

impl SpanGuard {
    /// Closes the span now (equivalent to dropping the guard).
    pub fn close(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.tracer.take() else { return };
        let Some(start) = self.start else { return };
        // Pop this span from the thread's open stack and read its
        // parent: the innermost remaining entry of the same tracer.
        let parent = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) =
                stack.iter().rposition(|&(tid, sid)| tid == inner.tracer_id && sid == self.id)
            {
                stack.remove(pos);
            }
            stack.iter().rev().find(|&&(tid, _)| tid == inner.tracer_id).map(|&(_, sid)| sid)
        });
        let start_ns = ns_since(inner.epoch, start);
        let end_ns = ns_since(inner.epoch, Instant::now());
        let mut st = inner.state.lock().unwrap();
        let thread = thread_number(&mut st);
        push_event(
            &mut st,
            TraceEvent::Span(Span {
                id: self.id,
                parent,
                layer: self.layer,
                name: std::mem::take(&mut self.name),
                thread,
                start_ns,
                dur_ns: end_ns.saturating_sub(start_ns),
            }),
        );
    }
}

fn ns_since(epoch: Instant, t: Instant) -> u64 {
    t.saturating_duration_since(epoch).as_nanos().min(u128::from(u64::MAX)) as u64
}

fn thread_number(st: &mut State) -> u64 {
    let next = st.threads.len() as u64;
    *st.threads.entry(std::thread::current().id()).or_insert(next)
}

fn push_event(st: &mut State, event: TraceEvent) {
    if st.ring.len() >= st.capacity {
        st.ring.pop_front();
        st.dropped += 1;
    }
    st.ring.push_back(event);
}

/// A point-in-time copy of a tracer's buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// The retained events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events evicted from the ring because it was full.
    pub dropped: u64,
    /// Final cumulative totals per `(layer, name)`, sorted by key —
    /// complete even when the ring dropped intermediate samples.
    pub totals: Vec<(&'static str, String, u64)>,
}

impl TraceSnapshot {
    /// The closed spans, in ring (close) order.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Span(s) => Some(s),
            _ => None,
        })
    }

    /// The counter samples, in ring order.
    pub fn counters(&self) -> impl Iterator<Item = &CounterSample> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Counter(c) => Some(c),
            _ => None,
        })
    }

    /// A copy with every wall-clock field zeroed, leaving only the
    /// deterministic structure (ids, parents, layers, names, threads,
    /// totals) — what tests compare across runs.
    #[must_use]
    pub fn zeroed_clock(&self) -> TraceSnapshot {
        let mut out = self.clone();
        for e in &mut out.events {
            match e {
                TraceEvent::Span(s) => {
                    s.start_ns = 0;
                    s.dur_ns = 0;
                }
                TraceEvent::Counter(c) => c.at_ns = 0,
                TraceEvent::Instant(m) => m.at_ns = 0,
            }
        }
        out
    }

    /// Structural validation of the trace:
    ///
    /// - every span's parent id refers to a span present in the
    ///   snapshot and allocated before the child (`parent < child`);
    /// - counter samples are monotonic per `(layer, name)` key and
    ///   never exceed the final total.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn check_well_formed(&self) -> Result<(), String> {
        let ids: std::collections::HashSet<u64> = self.spans().map(|s| s.id).collect();
        for s in self.spans() {
            if let Some(p) = s.parent {
                if p >= s.id {
                    return Err(format!(
                        "span {} ({}/{}) has parent {} not allocated before it",
                        s.id, s.layer, s.name, p
                    ));
                }
                // A parent evicted by the ring is forgivable only when
                // events were actually dropped.
                if !ids.contains(&p) && self.dropped == 0 {
                    return Err(format!(
                        "span {} ({}/{}) references missing parent {}",
                        s.id, s.layer, s.name, p
                    ));
                }
            }
        }
        let mut last: HashMap<(&str, &str), u64> = HashMap::new();
        let finals: HashMap<(&str, &str), u64> =
            self.totals.iter().map(|(l, n, t)| ((*l, n.as_str()), *t)).collect();
        for c in self.counters() {
            let key = (c.layer, c.name.as_str());
            let prev = last.insert(key, c.total).unwrap_or(0);
            if c.total < prev {
                return Err(format!(
                    "counter {}/{} went backwards: {} after {}",
                    c.layer, c.name, c.total, prev
                ));
            }
            if let Some(&fin) = finals.get(&key) {
                if c.total > fin {
                    return Err(format!(
                        "counter {}/{} sample {} exceeds final total {}",
                        c.layer, c.name, c.total, fin
                    ));
                }
            }
        }
        Ok(())
    }

    /// See [`Tracer::write_jsonl`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_jsonl(&self, w: &mut impl Write) -> io::Result<()> {
        for e in &self.events {
            let mut sec = Section::new();
            match e {
                TraceEvent::Span(s) => {
                    sec.set("kind", "span");
                    sec.set("id", s.id);
                    match s.parent {
                        Some(p) => sec.set("parent", p),
                        None => sec.set("parent", Value::Null),
                    };
                    sec.set("layer", s.layer);
                    sec.set("name", s.name.as_str());
                    sec.set("thread", s.thread);
                    sec.set("start_ns", s.start_ns);
                    sec.set("dur_ns", s.dur_ns);
                }
                TraceEvent::Counter(c) => {
                    sec.set("kind", "counter");
                    sec.set("layer", c.layer);
                    sec.set("name", c.name.as_str());
                    sec.set("total", c.total);
                    sec.set("thread", c.thread);
                    sec.set("at_ns", c.at_ns);
                }
                TraceEvent::Instant(m) => {
                    sec.set("kind", "instant");
                    sec.set("layer", m.layer);
                    sec.set("name", m.name.as_str());
                    sec.set("thread", m.thread);
                    sec.set("at_ns", m.at_ns);
                }
            }
            writeln!(w, "{}", report::to_json_compact(&sec))?;
        }
        Ok(())
    }

    /// See [`Tracer::write_chrome_trace`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_chrome_trace(&self, w: &mut impl Write) -> io::Result<()> {
        let us = |ns: u64| format!("{}.{:03}", ns / 1_000, ns % 1_000);
        writeln!(w, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
        let mut first = true;
        let mut sep = |w: &mut dyn Write| -> io::Result<()> {
            if first {
                first = false;
                Ok(())
            } else {
                writeln!(w, ",")
            }
        };
        for e in &self.events {
            match e {
                TraceEvent::Span(s) => {
                    sep(w)?;
                    let parent = s.parent.map_or_else(|| "null".to_string(), |p| p.to_string());
                    write!(
                        w,
                        "{{\"name\":{},\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                         \"pid\":1,\"tid\":{},\"args\":{{\"id\":{},\"parent\":{}}}}}",
                        report::json_string(&s.name),
                        s.layer,
                        us(s.start_ns),
                        us(s.dur_ns),
                        s.thread,
                        s.id,
                        parent,
                    )?;
                }
                TraceEvent::Counter(c) => {
                    sep(w)?;
                    write!(
                        w,
                        "{{\"name\":{},\"cat\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\
                         \"tid\":{},\"args\":{{{}:{}}}}}",
                        report::json_string(&format!("{}/{}", c.layer, c.name)),
                        c.layer,
                        us(c.at_ns),
                        c.thread,
                        report::json_string(&c.name),
                        c.total,
                    )?;
                }
                TraceEvent::Instant(m) => {
                    sep(w)?;
                    write!(
                        w,
                        "{{\"name\":{},\"cat\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\
                         \"tid\":{},\"s\":\"t\"}}",
                        report::json_string(&m.name),
                        m.layer,
                        us(m.at_ns),
                        m.thread,
                    )?;
                }
            }
        }
        writeln!(w, "\n]}}")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        {
            let _s = t.span("sat", "solve");
            t.count("sat", "conflicts", 5);
            t.instant("sat", "stop");
        }
        let snap = t.snapshot();
        assert!(snap.events.is_empty());
        assert!(snap.totals.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn spans_nest_and_parents_precede_children() {
        let t = Tracer::enabled();
        {
            let _outer = t.span("core", "session");
            {
                let _inner = t.span("smt", "query");
                t.count("smt", "cnf_vars", 10);
            }
            {
                let _inner2 = t.span("sat", "solve");
            }
        }
        let snap = t.snapshot();
        snap.check_well_formed().unwrap();
        let spans: Vec<&Span> = snap.spans().collect();
        assert_eq!(spans.len(), 3);
        // Close order: inner, inner2, outer.
        assert_eq!(spans[0].name, "query");
        assert_eq!(spans[1].name, "solve");
        assert_eq!(spans[2].name, "session");
        let outer_id = spans[2].id;
        assert_eq!(spans[0].parent, Some(outer_id));
        assert_eq!(spans[1].parent, Some(outer_id));
        assert_eq!(spans[2].parent, None);
    }

    #[test]
    fn counters_accumulate_monotonically() {
        let t = Tracer::enabled();
        t.count("cache", "hits", 2);
        t.count("cache", "hits", 3);
        t.count("cache", "misses", 1);
        t.count("cache", "hits", 0); // skipped: zero delta
        let snap = t.snapshot();
        snap.check_well_formed().unwrap();
        assert_eq!(snap.counters().count(), 3);
        assert_eq!(
            snap.totals,
            vec![("cache", "hits".to_string(), 5), ("cache", "misses".to_string(), 1)]
        );
    }

    #[test]
    fn ring_buffer_drops_oldest_and_keeps_totals() {
        let t = Tracer::with_capacity(4);
        for i in 0..10 {
            t.count("sat", "conflicts", i + 1);
        }
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.dropped, 6);
        // Totals survive the evictions: 1 + 2 + ... + 10.
        assert_eq!(snap.totals, vec![("sat", "conflicts".to_string(), 55)]);
        snap.check_well_formed().unwrap();
    }

    #[test]
    fn clones_share_one_buffer() {
        let t = Tracer::enabled();
        let u = t.clone();
        t.count("core", "tasks", 1);
        u.count("core", "tasks", 1);
        assert_eq!(t.snapshot().totals, vec![("core", "tasks".to_string(), 2)]);
    }

    #[test]
    fn zeroed_clock_is_deterministic_across_runs() {
        let run = || {
            let t = Tracer::enabled();
            {
                let _a = t.span("core", "session");
                t.count("sat", "conflicts", 7);
                let _b = t.span("smt", "query");
            }
            t.instant("service", "shed:x");
            t.snapshot().zeroed_clock()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn cross_thread_spans_are_roots() {
        let t = Tracer::enabled();
        t.count("core", "setup", 1); // pin the main thread as thread 0
        let _outer = t.span("core", "session");
        let u = t.clone();
        std::thread::spawn(move || {
            let _task = u.span("core", "task:X");
        })
        .join()
        .unwrap();
        let snap = t.snapshot();
        let task = snap.spans().find(|s| s.name == "task:X").unwrap();
        // The worker thread has no open parent of its own.
        assert_eq!(task.parent, None);
        assert_ne!(task.thread, 0);
    }

    #[test]
    fn chrome_export_has_trace_events_shape() {
        let t = Tracer::enabled();
        {
            let _s = t.span("sat", "solve");
            t.count("sat", "conflicts", 3);
        }
        t.instant("service", "shed");
        let mut buf = Vec::new();
        t.write_chrome_trace(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("{\"displayTimeUnit\""));
        assert!(text.contains("\"traceEvents\":["));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ph\":\"C\""));
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"cat\":\"sat\""));
        assert!(text.trim_end().ends_with("]}"));
    }

    #[test]
    fn jsonl_export_one_line_per_event() {
        let t = Tracer::enabled();
        t.count("cache", "hits", 1);
        {
            let _s = t.span("core", "task:\"quoted\"");
        }
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"counter\""));
        assert!(lines[1].contains("\"kind\":\"span\""));
        assert!(lines[1].contains("task:\\\"quoted\\\""));
    }
}
