//! Extended IR tests: error paths of the evaluators, golden-format
//! printing, and structural corner cases.

use owl_bitvec::BitVec;
use owl_oyster::{Design, Expr, Interpreter, SymbolicEvaluator};
use owl_smt::TermManager;
use std::collections::HashMap;

#[test]
fn symbolic_eval_reports_unbound_identifier() {
    let mut d = Design::new("bad");
    d.register("r", 4);
    // Bypass `check` by driving the evaluator directly with an invalid
    // design: the evaluator re-checks and reports.
    d.assign("r", Expr::var("ghost"));
    let mut mgr = TermManager::new();
    let err = SymbolicEvaluator::run(&mut mgr, &d, 1).unwrap_err();
    assert!(err.to_string().contains("ghost"));
}

#[test]
#[should_panic(expected = "1-based")]
fn trace_time_steps_are_one_based() {
    let d: Design = "design t\nregister r 1\nr := r\nend\n".parse().unwrap();
    let mut mgr = TermManager::new();
    let trace = SymbolicEvaluator::run(&mut mgr, &d, 1).unwrap();
    let _ = trace.at_time(0);
}

#[test]
fn golden_print_format() {
    let d: Design = "design g\n\
                     input a 4\n\
                     output o 4\n\
                     register r 4\n\
                     memory m 2 4\n\
                     hole h 1\n\
                     r := if h then a else r\n\
                     write m[extract(a, 1, 0)] := r when h\n\
                     o := m[extract(a, 1, 0)]\n\
                     end\n"
        .parse()
        .unwrap();
    let expect = "design g\n\
                  input a 4\n\
                  output o 4\n\
                  register r 4\n\
                  memory m 2 4\n\
                  hole h 1\n\
                  r := if h then a else r\n\
                  write m[extract(a, 1, 0)] := r when h\n\
                  o := m[extract(a, 1, 0)]\n\
                  end\n";
    assert_eq!(d.to_string(), expect);
    assert_eq!(d.line_count(), 10);
}

#[test]
fn interpreter_wide_registers() {
    // 128-bit datapaths (the AES case) work through the interpreter.
    let d: Design = "design w\ninput x 128\nregister acc 128\nacc := acc ^ x\nend\n"
        .parse()
        .unwrap();
    let mut sim = Interpreter::new(&d).unwrap();
    let v = BitVec::from_u128(128, 0xDEAD_BEEF_0123_4567_89AB_CDEF_1122_3344);
    let inputs: HashMap<String, BitVec> = [("x".to_string(), v.clone())].into();
    sim.step(&inputs).unwrap();
    assert_eq!(sim.reg("acc").unwrap(), &v);
    sim.step(&inputs).unwrap();
    assert!(sim.reg("acc").unwrap().is_zero());
}

#[test]
fn nested_if_chains_parse_right_associated() {
    let d: Design = "design n\ninput a 2\noutput o 4\n\
                     o := if a == 2'x0 then 4'x1 else if a == 2'x1 then 4'x2 else 4'x3\n\
                     end\n"
        .parse()
        .unwrap();
    let mut sim = Interpreter::new(&d).unwrap();
    for (a, want) in [(0u64, 1u64), (1, 2), (2, 3), (3, 3)] {
        let inputs: HashMap<String, BitVec> =
            [("a".to_string(), BitVec::from_u64(2, a))].into();
        let out = sim.step(&inputs).unwrap();
        assert_eq!(out.outputs["o"].to_u64(), Some(want));
    }
}

#[test]
fn multiple_write_ports_commit_in_order() {
    // Two writes to the same address in one cycle: the later statement
    // wins (write list order).
    let d: Design = "design wp\ninput a 2\nmemory m 2 8\noutput o 8\n\
                     o := m[a]\n\
                     write m[a] := 8'x11 when 1'x1\n\
                     write m[a] := 8'x22 when 1'x1\n\
                     end\n"
        .parse()
        .unwrap();
    let mut sim = Interpreter::new(&d).unwrap();
    let inputs: HashMap<String, BitVec> = [("a".to_string(), BitVec::from_u64(2, 1))].into();
    sim.step(&inputs).unwrap();
    assert_eq!(sim.mem("m").unwrap().read(1).to_u64(), Some(0x22));

    // The symbolic semantics agree.
    let mut mgr = TermManager::new();
    let trace = SymbolicEvaluator::run(&mut mgr, &d, 1).unwrap();
    let a = trace.inputs["a"];
    let mem = trace.snapshots[1].mems["m"].clone();
    let rd = mem.read(&mut mgr, a);
    let c22 = mgr.const_u64(8, 0x22);
    let bad = mgr.neq(rd, c22);
    assert!(owl_smt::solve(&mut mgr, &[bad], None).result.is_unsat());
}

#[test]
fn symbolic_mem_read_over_disabled_writes_folds() {
    let d: Design = "design f\ninput a 4\ninput en 1\nmemory m 4 8\n\
                     write m[a] := 8'xff when en\nend\n"
        .parse()
        .unwrap();
    let mut mgr = TermManager::new();
    let trace = SymbolicEvaluator::run(&mut mgr, &d, 1).unwrap();
    let a = trace.inputs["a"];
    let en = trace.inputs["en"];
    let mem = trace.snapshots[1].mems["m"].clone();
    let rd = mem.read(&mut mgr, a);
    // Under en = 1 the read must be 0xff; under en = 0 it is the base.
    let c1 = mgr.tru();
    let en_on = mgr.eq(en, c1);
    let cff = mgr.const_u64(8, 0xFF);
    let bad = mgr.neq(rd, cff);
    assert!(owl_smt::solve(&mut mgr, &[en_on, bad], None).result.is_unsat());
}

#[test]
fn line_count_tracks_statements_and_decls() {
    let mut d = Design::new("lc");
    d.input("a", 1);
    assert_eq!(d.line_count(), 3); // design + input + end
    d.assign("w", Expr::var("a"));
    assert_eq!(d.line_count(), 4);
}
