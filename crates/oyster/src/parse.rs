//! The Oyster text-format parser (a hand-written lexer and Pratt parser).

use crate::ir::{BinOp, DeclKind, Design, Expr, OysterError};
use owl_bitvec::BitVec;
use std::str::FromStr;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Const(BitVec),
    Int(u64),
    Op(&'static str),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Assign,
    Newline,
}

struct Lexer<'a> {
    text: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(text: &'a str) -> Self {
        Lexer { text, pos: 0, line: 1 }
    }

    fn error(&self, msg: impl Into<String>) -> OysterError {
        OysterError::new(format!("line {}: {}", self.line, msg.into()))
    }

    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn next_token(&mut self) -> Result<Option<Token>, OysterError> {
        loop {
            let rest = self.rest();
            let Some(c) = rest.chars().next() else {
                return Ok(None);
            };
            match c {
                '\n' => {
                    self.bump(1);
                    self.line += 1;
                    return Ok(Some(Token::Newline));
                }
                ' ' | '\t' | '\r' => {
                    self.bump(1);
                }
                ';' | '#' => {
                    let eol = rest.find('\n').map_or(rest.len(), |i| i);
                    self.bump(eol);
                }
                '(' => {
                    self.bump(1);
                    return Ok(Some(Token::LParen));
                }
                ')' => {
                    self.bump(1);
                    return Ok(Some(Token::RParen));
                }
                '[' => {
                    self.bump(1);
                    return Ok(Some(Token::LBracket));
                }
                ']' => {
                    self.bump(1);
                    return Ok(Some(Token::RBracket));
                }
                ',' => {
                    self.bump(1);
                    return Ok(Some(Token::Comma));
                }
                _ => return self.lex_complex(rest, c).map(Some),
            }
        }
    }

    fn lex_complex(&mut self, rest: &str, c: char) -> Result<Token, OysterError> {
        // Multi-character operators, longest first.
        for (pat, tok) in [
            (":=", Token::Assign),
            (">>>", Token::Op(">>>")),
            ("<<", Token::Op("<<")),
            (">>", Token::Op(">>")),
            ("==", Token::Op("==")),
            ("!=", Token::Op("!=")),
            ("<=u", Token::Op("<=u")),
            ("<=s", Token::Op("<=s")),
            ("<u", Token::Op("<u")),
            ("<s", Token::Op("<s")),
            ("&", Token::Op("&")),
            ("|", Token::Op("|")),
            ("^", Token::Op("^")),
            ("+", Token::Op("+")),
            ("-", Token::Op("-")),
            ("*", Token::Op("*")),
            ("~", Token::Op("~")),
        ] {
            if rest.starts_with(pat) {
                self.bump(pat.len());
                return Ok(tok);
            }
        }
        if c.is_ascii_digit() {
            // Either a bitvector constant (width'payload) or a bare integer.
            let end = rest
                .char_indices()
                .find(|(_, ch)| !ch.is_ascii_digit())
                .map_or(rest.len(), |(i, _)| i);
            if rest[end..].starts_with('\'') {
                let payload_start = end + 1;
                let payload_end = rest[payload_start..]
                    .char_indices()
                    .find(|(_, ch)| !(ch.is_ascii_alphanumeric() || *ch == '_'))
                    .map_or(rest.len(), |(i, _)| payload_start + i);
                let literal = &rest[..payload_end];
                let value = BitVec::from_str(literal)
                    .map_err(|e| self.error(format!("bad constant {literal:?}: {e}")))?;
                self.bump(payload_end);
                return Ok(Token::Const(value));
            }
            let value: u64 = rest[..end]
                .parse()
                .map_err(|_| self.error(format!("bad integer {:?}", &rest[..end])))?;
            self.bump(end);
            return Ok(Token::Int(value));
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let end = rest
                .char_indices()
                .find(|(_, ch)| !(ch.is_ascii_alphanumeric() || *ch == '_' || *ch == '.'))
                .map_or(rest.len(), |(i, _)| i);
            let ident = rest[..end].to_string();
            self.bump(end);
            return Ok(Token::Ident(ident));
        }
        Err(self.error(format!("unexpected character {c:?}")))
    }
}

/// Expression nesting bound: inputs nested deeper than this are rejected
/// instead of overflowing the parser's stack.
const MAX_EXPR_DEPTH: usize = 256;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> OysterError {
        OysterError::new(format!("near token {}: {}", self.pos, msg.into()))
    }

    fn expect_ident(&mut self) -> Result<String, OysterError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.error(format!("expected identifier, got {other:?}"))),
        }
    }

    fn expect_int(&mut self) -> Result<u64, OysterError> {
        match self.next() {
            Some(Token::Int(v)) => Ok(v),
            other => Err(self.error(format!("expected integer, got {other:?}"))),
        }
    }

    fn expect_u32(&mut self) -> Result<u32, OysterError> {
        let v = self.expect_int()?;
        u32::try_from(v).map_err(|_| self.error(format!("integer {v} out of range")))
    }

    fn expect(&mut self, tok: &Token) -> Result<(), OysterError> {
        match self.next() {
            Some(t) if t == *tok => Ok(()),
            other => Err(self.error(format!("expected {tok:?}, got {other:?}"))),
        }
    }

    fn skip_newlines(&mut self) {
        while self.peek() == Some(&Token::Newline) {
            self.pos += 1;
        }
    }

    fn end_of_line(&mut self) -> Result<(), OysterError> {
        match self.next() {
            Some(Token::Newline) | None => Ok(()),
            other => Err(self.error(format!("expected end of line, got {other:?}"))),
        }
    }

    // ------------------------------------------------------------------
    // Expressions (Pratt parsing; precedence mirrors print.rs)
    // ------------------------------------------------------------------

    fn binop_of(op: &str) -> Option<BinOp> {
        Some(match op {
            "&" => BinOp::And,
            "|" => BinOp::Or,
            "^" => BinOp::Xor,
            "+" => BinOp::Add,
            "-" => BinOp::Sub,
            "*" => BinOp::Mul,
            "<<" => BinOp::Shl,
            ">>" => BinOp::Lshr,
            ">>>" => BinOp::Ashr,
            "==" => BinOp::Eq,
            "!=" => BinOp::Neq,
            "<u" => BinOp::Ult,
            "<=u" => BinOp::Ule,
            "<s" => BinOp::Slt,
            "<=s" => BinOp::Sle,
            _ => return None,
        })
    }

    fn parse_expr(&mut self, min_prec: u8) -> Result<Expr, OysterError> {
        let mut lhs = self.parse_unary()?;
        while let Some(Token::Op(op)) = self.peek() {
            let Some(binop) = Self::binop_of(op) else { break };
            let prec = crate::print::precedence(binop);
            if prec < min_prec {
                break;
            }
            self.pos += 1;
            let rhs = self.parse_expr(prec + 1)?;
            lhs = Expr::binop(binop, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, OysterError> {
        if self.depth >= MAX_EXPR_DEPTH {
            return Err(self.error("expression nesting too deep"));
        }
        self.depth += 1;
        let result = if self.peek() == Some(&Token::Op("~")) {
            self.pos += 1;
            self.parse_unary().map(|e| e.not())
        } else {
            self.parse_primary()
        };
        self.depth -= 1;
        result
    }

    fn parse_fn_args2(&mut self) -> Result<(Expr, u64, Option<u64>), OysterError> {
        self.expect(&Token::LParen)?;
        let e = self.parse_expr(0)?;
        self.expect(&Token::Comma)?;
        let a = self.expect_int()?;
        let b = if self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            Some(self.expect_int()?)
        } else {
            None
        };
        self.expect(&Token::RParen)?;
        Ok((e, a, b))
    }

    fn parse_primary(&mut self) -> Result<Expr, OysterError> {
        match self.next() {
            Some(Token::Const(c)) => Ok(Expr::Const(c)),
            Some(Token::LParen) => {
                let e = self.parse_expr(0)?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => match name.as_str() {
                "if" => {
                    let c = self.parse_expr(1)?;
                    match self.next() {
                        Some(Token::Ident(kw)) if kw == "then" => {}
                        other => return Err(self.error(format!("expected 'then', got {other:?}"))),
                    }
                    let t = self.parse_expr(1)?;
                    match self.next() {
                        Some(Token::Ident(kw)) if kw == "else" => {}
                        other => return Err(self.error(format!("expected 'else', got {other:?}"))),
                    }
                    let e = self.parse_expr(0)?;
                    Ok(Expr::ite(c, t, e))
                }
                "extract" => {
                    let (e, high, low) = self.parse_fn_args2()?;
                    let low = low.ok_or_else(|| self.error("extract needs high and low"))?;
                    Ok(e.extract(high as u32, low as u32))
                }
                "concat" => {
                    self.expect(&Token::LParen)?;
                    let a = self.parse_expr(0)?;
                    self.expect(&Token::Comma)?;
                    let b = self.parse_expr(0)?;
                    self.expect(&Token::RParen)?;
                    Ok(a.concat(b))
                }
                "zext" => {
                    let (e, w, extra) = self.parse_fn_args2()?;
                    if extra.is_some() {
                        return Err(self.error("zext takes one width"));
                    }
                    Ok(e.zext(w as u32))
                }
                "sext" => {
                    let (e, w, extra) = self.parse_fn_args2()?;
                    if extra.is_some() {
                        return Err(self.error("sext takes one width"));
                    }
                    Ok(e.sext(w as u32))
                }
                _ => {
                    if self.peek() == Some(&Token::LBracket) {
                        self.pos += 1;
                        let addr = self.parse_expr(0)?;
                        self.expect(&Token::RBracket)?;
                        Ok(Expr::read(name, addr))
                    } else {
                        Ok(Expr::var(name))
                    }
                }
            },
            other => Err(self.error(format!("expected expression, got {other:?}"))),
        }
    }

    // ------------------------------------------------------------------
    // Top level
    // ------------------------------------------------------------------

    fn parse_design(&mut self) -> Result<Design, OysterError> {
        self.skip_newlines();
        match self.next() {
            Some(Token::Ident(kw)) if kw == "design" => {}
            other => return Err(self.error(format!("expected 'design', got {other:?}"))),
        }
        let name = self.expect_ident()?;
        self.end_of_line()?;
        let mut design = Design::new(name);
        loop {
            self.skip_newlines();
            let Some(tok) = self.next() else {
                return Err(self.error("missing 'end'"));
            };
            let Token::Ident(head) = tok else {
                return Err(self.error(format!("expected statement, got {tok:?}")));
            };
            match head.as_str() {
                "end" => break,
                "input" | "output" | "register" | "hole" => {
                    let name = self.expect_ident()?;
                    let width = self.expect_u32()?;
                    let kind = match head.as_str() {
                        "input" => DeclKind::Input,
                        "output" => DeclKind::Output,
                        "register" => DeclKind::Register,
                        _ => DeclKind::Hole,
                    };
                    design.declare(name, width, kind);
                    self.end_of_line()?;
                }
                "memory" => {
                    let name = self.expect_ident()?;
                    let aw = self.expect_u32()?;
                    let dw = self.expect_u32()?;
                    design.memory(name, aw, dw);
                    self.end_of_line()?;
                }
                "rom" => {
                    let name = self.expect_ident()?;
                    let aw = self.expect_u32()?;
                    let dw = self.expect_u32()?;
                    // Bare-int entries are materialized at width `dw`
                    // below, so the width must be valid before any
                    // BitVec is built.
                    if dw == 0 || dw > owl_bitvec::MAX_WIDTH {
                        return Err(self.error(format!(
                            "rom {name}: data width {dw} out of range (1..={})",
                            owl_bitvec::MAX_WIDTH
                        )));
                    }
                    self.expect(&Token::LBracket)?;
                    let mut data = Vec::new();
                    loop {
                        match self.next() {
                            Some(Token::RBracket) => break,
                            Some(Token::Const(c)) => data.push(c),
                            Some(Token::Int(v)) => data.push(BitVec::from_u64(dw, v)),
                            other => {
                                return Err(
                                    self.error(format!("expected rom entry, got {other:?}"))
                                )
                            }
                        }
                    }
                    design.rom(name, aw, dw, data);
                    self.end_of_line()?;
                }
                "write" => {
                    let mem = self.expect_ident()?;
                    self.expect(&Token::LBracket)?;
                    let addr = self.parse_expr(0)?;
                    self.expect(&Token::RBracket)?;
                    self.expect(&Token::Assign)?;
                    let data = self.parse_expr(0)?;
                    match self.next() {
                        Some(Token::Ident(kw)) if kw == "when" => {}
                        other => return Err(self.error(format!("expected 'when', got {other:?}"))),
                    }
                    let enable = self.parse_expr(0)?;
                    design.write(mem, addr, data, enable);
                    self.end_of_line()?;
                }
                var => {
                    self.expect(&Token::Assign)?;
                    let expr = self.parse_expr(0)?;
                    design.assign(var.to_string(), expr);
                    self.end_of_line()?;
                }
            }
        }
        Ok(design)
    }
}

impl FromStr for Design {
    type Err = OysterError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut lexer = Lexer::new(s);
        let mut tokens = Vec::new();
        while let Some(t) = lexer.next_token()? {
            tokens.push(t);
        }
        let mut parser = Parser { tokens, pos: 0, depth: 0 };
        let design = parser.parse_design()?;
        parser.skip_newlines();
        if parser.peek().is_some() {
            return Err(OysterError::new("trailing input after 'end'"));
        }
        Ok(design)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Stmt;

    fn round_trip(text: &str) -> Design {
        let d: Design = text.parse().expect("parse");
        let printed = d.to_string();
        let d2: Design = printed.parse().expect("reparse");
        assert_eq!(d, d2, "round trip changed the design:\n{printed}");
        d
    }

    #[test]
    fn parse_accumulator() {
        let d = round_trip(
            "design acc\n\
             input go 1\n\
             input val 2\n\
             register acc 8\n\
             output out 8\n\
             acc := if go then acc + zext(val, 8) else acc\n\
             out := acc\n\
             end\n",
        );
        assert_eq!(d.name(), "acc");
        assert_eq!(d.decls().len(), 4);
        assert_eq!(d.stmts().len(), 2);
        assert!(d.check().is_ok());
    }

    #[test]
    fn parse_memory_and_write() {
        let d = round_trip(
            "design mem_demo\n\
             input addr 4\n\
             input data 8\n\
             input en 1\n\
             memory ram 4 8\n\
             output out 8\n\
             write ram[addr] := data when en\n\
             out := ram[addr]\n\
             end\n",
        );
        assert!(d.check().is_ok());
        assert!(matches!(d.stmts()[0], Stmt::Write { .. }));
    }

    #[test]
    fn parse_rom() {
        let d = round_trip(
            "design r\ninput a 2\nrom t 2 8 [8'x0a 8'x14 30 40]\nout := t[a]\nend\n",
        );
        let DeclKind::Rom { data, .. } = &d.decls()[1].kind else { panic!() };
        assert_eq!(data[2].to_u64(), Some(30));
        assert!(d.check().is_ok());
    }

    #[test]
    fn parse_operator_precedence() {
        let d: Design =
            "design p\ninput a 8\ninput b 8\ninput c 8\nx := a + b & c | a ^ b\nend\n"
                .parse()
                .unwrap();
        // Expected grouping: ((a + b) & c) | (a ^ b) — Or lowest, And above Xor... per our table:
        // Mul > Add > Shift > And > Xor > Or > Cmp.
        let Stmt::Assign { expr, .. } = &d.stmts()[0] else { panic!() };
        let Expr::Binop(BinOp::Or, l, r) = expr else { panic!("got {expr}") };
        let Expr::Binop(BinOp::Xor, xl, _) = &**r else { panic!() };
        assert_eq!(xl.to_string(), "a");
        let Expr::Binop(BinOp::And, al, _) = &**l else { panic!() };
        assert_eq!(al.to_string(), "a + b");
    }

    #[test]
    fn parse_comments_and_blank_lines() {
        let d: Design = "design c\n; a comment\n\ninput a 1 ; trailing\n# hash comment\nend\n"
            .parse()
            .unwrap();
        assert_eq!(d.decls().len(), 1);
    }

    #[test]
    fn parse_holes() {
        let d = round_trip(
            "design h\ninput op 2\nhole sel 1\nregister r 8\nr := if sel then r + 8'x01 else r\nend\n",
        );
        assert_eq!(d.hole_names(), vec!["sel"]);
    }

    #[test]
    fn parse_shift_and_compare_ops() {
        let d = round_trip(
            "design s\ninput a 8\ninput b 8\n\
             x := a << b\ny := a >> b\nz := a >>> b\n\
             p := a <u b\nq := a <=s b\nr := a != b\n\
             end\n",
        );
        assert!(d.check().is_ok());
    }

    #[test]
    fn parse_errors_have_context() {
        let err = "design\n".parse::<Design>().unwrap_err();
        assert!(err.to_string().contains("expected identifier"));
        let err = "design d\ninput a 1\n".parse::<Design>().unwrap_err();
        assert!(err.to_string().contains("missing 'end'"));
        let err = "design d\nx := @\nend\n".parse::<Design>().unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn parse_not_and_nested_parens() {
        let d = round_trip("design n\ninput a 4\nx := ~(a + 4'x1) & a\nend\n");
        assert!(d.check().is_ok());
    }

    #[test]
    fn rom_entry_with_bad_data_width_is_an_error() {
        // Bare-int rom entries build a BitVec at the declared data width;
        // a zero or oversized width must be a parse error, not a panic.
        assert!("design r\nrom t 2 0 [5]\nend\n".parse::<Design>().is_err());
        assert!("design r\nrom t 2 99999999 [5]\nend\n".parse::<Design>().is_err());
    }

    #[test]
    fn oversized_widths_are_errors_not_truncations() {
        // 2^32 + 8 used to truncate to width 8 via `as u32`.
        assert!("design w\ninput a 4294967304\nend\n".parse::<Design>().is_err());
        assert!("design w\nmemory m 4 4294967304\nend\n".parse::<Design>().is_err());
    }

    #[test]
    fn deep_nesting_is_rejected_not_stack_overflow() {
        for text in [
            format!("design d\nx := {}a{}\nend\n", "(".repeat(40_000), ")".repeat(40_000)),
            format!("design d\nx := {}a\nend\n", "~".repeat(40_000)),
            format!("design d\nx := {}a\nend\n", "zext(".repeat(20_000)),
        ] {
            let err = text.parse::<Design>().unwrap_err();
            assert!(
                err.to_string().contains("nesting too deep") || err.to_string().contains("expected"),
                "unexpected error: {err}"
            );
        }
    }

    #[test]
    fn shallow_nesting_still_parses() {
        let text = format!("design d\ninput a 4\nx := {}a{}\nend\n", "(".repeat(200), ")".repeat(200));
        assert!(text.parse::<Design>().is_ok());
    }

    #[test]
    fn deterministic_fuzz_never_panics() {
        // A cheap dependency-free fuzzer: a splitmix64-driven generator
        // mutates corpus designs and emits random token soup. The parser
        // must return (Ok or Err) on every input, never panic.
        let corpus = [
            "design acc\ninput go 1\nregister acc 8\nacc := if go then acc + 8'x01 else acc\nend\n",
            "design m\nmemory ram 4 8\nwrite ram[0'x0] := 8'x00 when 1'x1\nend\n",
            "design r\ninput a 2\nrom t 2 8 [8'x0a 8'x14 30 40]\nout := t[a]\nend\n",
        ];
        let mut state = 0x0815_EEDu64 ^ 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let fragments = [
            "design", "end", "input", "rom", "memory", "write", ":=", "if", "then", "else",
            "zext(", "extract(", "(", ")", "[", "]", ",", "~", "8'xff", "0'x0", "65537'x0",
            "18446744073709551615", "a", "\n", "<<", ">>>", "==", "<=u", ";c\n", "#c\n", "'",
        ];
        for _ in 0..2_000 {
            let mut text = String::new();
            if next() % 2 == 0 {
                // Mutate a corpus entry: splice random fragments into it.
                let base = corpus[(next() % corpus.len() as u64) as usize];
                let cut = (next() % base.len() as u64) as usize;
                // Cut at a char boundary (corpus is ASCII, so any index works).
                text.push_str(&base[..cut]);
                for _ in 0..next() % 8 {
                    text.push_str(fragments[(next() % fragments.len() as u64) as usize]);
                    text.push(' ');
                }
                text.push_str(&base[cut..]);
            } else {
                for _ in 0..next() % 64 {
                    text.push_str(fragments[(next() % fragments.len() as u64) as usize]);
                    if next() % 3 == 0 {
                        text.push(' ');
                    }
                }
            }
            let _ = text.parse::<Design>();
        }
    }
}
