//! The Oyster IR data types and the width-checking validator.

use owl_bitvec::BitVec;
use std::collections::HashMap;
use std::fmt;

/// Binary operators of the Oyster expression grammar.
///
/// The paper's Fig. 5 lists `∧ ∨ ⊕ + =` and notes that "many common
/// bitvector operations" are supported; the full set used by the case
/// studies is below.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Bitwise AND (`&`).
    And,
    /// Bitwise OR (`|`).
    Or,
    /// Bitwise XOR (`^`).
    Xor,
    /// Addition modulo `2^w` (`+`).
    Add,
    /// Subtraction modulo `2^w` (`-`).
    Sub,
    /// Multiplication modulo `2^w` (`*`).
    Mul,
    /// Left shift (`<<`).
    Shl,
    /// Logical right shift (`>>`).
    Lshr,
    /// Arithmetic right shift (`>>>`).
    Ashr,
    /// Equality (`==`), 1-bit result.
    Eq,
    /// Disequality (`!=`), 1-bit result.
    Neq,
    /// Unsigned less-than (`<u`), 1-bit result.
    Ult,
    /// Unsigned less-or-equal (`<=u`), 1-bit result.
    Ule,
    /// Signed less-than (`<s`), 1-bit result.
    Slt,
    /// Signed less-or-equal (`<=s`), 1-bit result.
    Sle,
}

impl BinOp {
    /// True for operators with a 1-bit result.
    #[must_use]
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Neq | BinOp::Ult | BinOp::Ule | BinOp::Slt | BinOp::Sle
        )
    }

    /// The surface syntax of the operator.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Shl => "<<",
            BinOp::Lshr => ">>",
            BinOp::Ashr => ">>>",
            BinOp::Eq => "==",
            BinOp::Neq => "!=",
            BinOp::Ult => "<u",
            BinOp::Ule => "<=u",
            BinOp::Slt => "<s",
            BinOp::Sle => "<=s",
        }
    }
}

/// An Oyster expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Reference to an input, register, wire, or hole.
    Var(String),
    /// A constant.
    Const(BitVec),
    /// Bitwise NOT.
    Not(Box<Expr>),
    /// Binary operator application.
    Binop(BinOp, Box<Expr>, Box<Expr>),
    /// `if cond then a else b`; a nonzero condition selects `a`.
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Bit extraction `extract e high low`.
    Extract(Box<Expr>, u32, u32),
    /// Concatenation `concat high low`.
    Concat(Box<Expr>, Box<Expr>),
    /// Zero extension to a width.
    ZExt(Box<Expr>, u32),
    /// Sign extension to a width.
    SExt(Box<Expr>, u32),
    /// Memory read `read mem addr`.
    Read(String, Box<Expr>),
}

// The builder methods deliberately mirror operator names (`add`, `not`,
// ...) without implementing the std traits: they build IR nodes, and the
// by-value chaining style is the DSL's documented surface.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// A variable reference.
    #[must_use]
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// A constant from a `u64`.
    #[must_use]
    pub fn const_u64(width: u32, value: u64) -> Expr {
        Expr::Const(BitVec::from_u64(width, value))
    }

    /// Bitwise NOT.
    #[must_use]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Binary operation.
    #[must_use]
    pub fn binop(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binop(op, Box::new(lhs), Box::new(rhs))
    }

    /// Addition.
    #[must_use]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::binop(BinOp::Add, self, rhs)
    }

    /// Subtraction.
    #[must_use]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::binop(BinOp::Sub, self, rhs)
    }

    /// Bitwise AND.
    #[must_use]
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::binop(BinOp::And, self, rhs)
    }

    /// Bitwise OR.
    #[must_use]
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::binop(BinOp::Or, self, rhs)
    }

    /// Bitwise XOR.
    #[must_use]
    pub fn xor(self, rhs: Expr) -> Expr {
        Expr::binop(BinOp::Xor, self, rhs)
    }

    /// Equality comparison.
    #[must_use]
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::binop(BinOp::Eq, self, rhs)
    }

    /// Disequality comparison.
    #[must_use]
    pub fn neq(self, rhs: Expr) -> Expr {
        Expr::binop(BinOp::Neq, self, rhs)
    }

    /// If-then-else.
    #[must_use]
    pub fn ite(cond: Expr, then: Expr, els: Expr) -> Expr {
        Expr::Ite(Box::new(cond), Box::new(then), Box::new(els))
    }

    /// Bit extraction.
    #[must_use]
    pub fn extract(self, high: u32, low: u32) -> Expr {
        Expr::Extract(Box::new(self), high, low)
    }

    /// Concatenation (self is the high part).
    #[must_use]
    pub fn concat(self, low: Expr) -> Expr {
        Expr::Concat(Box::new(self), Box::new(low))
    }

    /// Zero extension.
    #[must_use]
    pub fn zext(self, width: u32) -> Expr {
        Expr::ZExt(Box::new(self), width)
    }

    /// Sign extension.
    #[must_use]
    pub fn sext(self, width: u32) -> Expr {
        Expr::SExt(Box::new(self), width)
    }

    /// Memory read.
    #[must_use]
    pub fn read(mem: impl Into<String>, addr: Expr) -> Expr {
        Expr::Read(mem.into(), Box::new(addr))
    }

    /// Iterates over the variable names referenced by this expression
    /// (not memory names).
    pub fn free_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(n) => out.push(n.clone()),
            Expr::Const(_) => {}
            Expr::Not(a) | Expr::Extract(a, _, _) | Expr::ZExt(a, _) | Expr::SExt(a, _) => {
                a.free_vars(out);
            }
            Expr::Binop(_, a, b) | Expr::Concat(a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
            Expr::Ite(c, t, e) => {
                c.free_vars(out);
                t.free_vars(out);
                e.free_vars(out);
            }
            Expr::Read(_, a) => a.free_vars(out),
        }
    }
}

/// The role of a declared name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeclKind {
    /// External input, one value per symbolic evaluation (constant across
    /// the evaluated cycles) or supplied per cycle by the interpreter.
    Input,
    /// Externally visible output.
    Output,
    /// A register: reads give the current value, assignments take effect
    /// next cycle.
    Register,
    /// A memory with the given address width; synchronous writes.
    Memory {
        /// Address width in bits.
        addr_width: u32,
    },
    /// A read-only memory with constant contents (the ILA `MemConst`
    /// lookup-table pattern; entries beyond `data.len()` read as zero).
    Rom {
        /// Address width in bits.
        addr_width: u32,
        /// Table contents, each entry `width` bits wide.
        data: Vec<BitVec>,
    },
    /// A synthesis hole: a control value to be filled in by control logic
    /// synthesis.
    Hole,
}

/// A declaration: a name with a width and a role.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decl {
    /// Declared name.
    pub name: String,
    /// Data width in bits.
    pub width: u32,
    /// Role of the name.
    pub kind: DeclKind,
}

/// An Oyster statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `var := expr` — defines a wire, drives an output, or sets a
    /// register's next value.
    Assign {
        /// Target name.
        var: String,
        /// Driving expression.
        expr: Expr,
    },
    /// `write mem addr data enable` — a guarded synchronous memory write.
    Write {
        /// Memory name.
        mem: String,
        /// Address expression.
        addr: Expr,
        /// Data expression.
        data: Expr,
        /// Enable expression (nonzero enables the write).
        enable: Expr,
    },
}

/// Error produced by Oyster validation or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OysterError {
    message: String,
}

impl OysterError {
    /// Creates an error with the given message. Public so that front ends
    /// lowering to Oyster (e.g. `owl-hdl`) can report their own errors in
    /// the same type.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        OysterError { message: message.into() }
    }
}

impl fmt::Display for OysterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oyster error: {}", self.message)
    }
}

impl std::error::Error for OysterError {}

/// A complete Oyster design: declarations plus statements.
///
/// Construct with [`Design::new`] and the builder methods below, or
/// parse from text; [`Design::check`] validates name resolution and bit
/// widths and is invoked automatically by the interpreter and symbolic
/// evaluator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Design {
    name: String,
    decls: Vec<Decl>,
    stmts: Vec<Stmt>,
}

impl Design {
    /// Creates an empty design with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Design { name: name.into(), decls: Vec::new(), stmts: Vec::new() }
    }

    /// The design's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declarations, in order.
    #[must_use]
    pub fn decls(&self) -> &[Decl] {
        &self.decls
    }

    /// The statements, in order.
    #[must_use]
    pub fn stmts(&self) -> &[Stmt] {
        &self.stmts
    }

    /// Adds a declaration.
    pub fn declare(&mut self, name: impl Into<String>, width: u32, kind: DeclKind) -> &mut Self {
        self.decls.push(Decl { name: name.into(), width, kind });
        self
    }

    /// Adds an input declaration.
    pub fn input(&mut self, name: impl Into<String>, width: u32) -> &mut Self {
        self.declare(name, width, DeclKind::Input)
    }

    /// Adds an output declaration.
    pub fn output(&mut self, name: impl Into<String>, width: u32) -> &mut Self {
        self.declare(name, width, DeclKind::Output)
    }

    /// Adds a register declaration.
    pub fn register(&mut self, name: impl Into<String>, width: u32) -> &mut Self {
        self.declare(name, width, DeclKind::Register)
    }

    /// Adds a memory declaration (`addr_width` address bits, `width`-bit
    /// data).
    pub fn memory(&mut self, name: impl Into<String>, addr_width: u32, width: u32) -> &mut Self {
        self.declare(name, width, DeclKind::Memory { addr_width })
    }

    /// Adds a ROM declaration with constant contents.
    pub fn rom(
        &mut self,
        name: impl Into<String>,
        addr_width: u32,
        width: u32,
        data: Vec<BitVec>,
    ) -> &mut Self {
        self.declare(name, width, DeclKind::Rom { addr_width, data })
    }

    /// Adds a hole declaration.
    pub fn hole(&mut self, name: impl Into<String>, width: u32) -> &mut Self {
        self.declare(name, width, DeclKind::Hole)
    }

    /// Adds an assignment statement.
    pub fn assign(&mut self, var: impl Into<String>, expr: Expr) -> &mut Self {
        self.stmts.push(Stmt::Assign { var: var.into(), expr });
        self
    }

    /// Adds a guarded memory write statement.
    pub fn write(&mut self, mem: impl Into<String>, addr: Expr, data: Expr, enable: Expr) -> &mut Self {
        self.stmts.push(Stmt::Write { mem: mem.into(), addr, data, enable });
        self
    }

    /// Looks up a declaration by name.
    #[must_use]
    pub fn decl(&self, name: &str) -> Option<&Decl> {
        self.decls.iter().find(|d| d.name == name)
    }

    /// Names of all hole declarations, in declaration order.
    #[must_use]
    pub fn hole_names(&self) -> Vec<String> {
        self.decls
            .iter()
            .filter(|d| d.kind == DeclKind::Hole)
            .map(|d| d.name.clone())
            .collect()
    }

    /// Number of source lines when printed in the Oyster text format (the
    /// paper's "sketch size" metric).
    #[must_use]
    pub fn line_count(&self) -> usize {
        self.to_string().lines().count()
    }

    /// Validates the design: unique declarations, resolvable names, single
    /// assignment per wire/output/register, and consistent bit widths.
    /// Returns the inferred width of every wire.
    ///
    /// # Errors
    ///
    /// Returns an [`OysterError`] describing the first problem found.
    pub fn check(&self) -> Result<HashMap<String, u32>, OysterError> {
        let mut widths: HashMap<String, u32> = HashMap::new();
        let mut mems: HashMap<String, (u32, u32, bool)> = HashMap::new(); // (addr, data, writable)
        for d in &self.decls {
            if d.width == 0 {
                return Err(OysterError::new(format!("declaration {} has zero width", d.name)));
            }
            if d.width > owl_bitvec::MAX_WIDTH {
                return Err(OysterError::new(format!(
                    "declaration {} width {} exceeds the {}-bit limit",
                    d.name,
                    d.width,
                    owl_bitvec::MAX_WIDTH
                )));
            }
            let clash = widths.contains_key(&d.name) || mems.contains_key(&d.name);
            if clash {
                return Err(OysterError::new(format!("duplicate declaration {}", d.name)));
            }
            match &d.kind {
                DeclKind::Memory { addr_width } => {
                    mems.insert(d.name.clone(), (*addr_width, d.width, true));
                }
                DeclKind::Rom { addr_width, data } => {
                    if data.len() as u64 > 1u64 << (*addr_width).min(63) {
                        return Err(OysterError::new(format!(
                            "rom {} has more entries than its address space",
                            d.name
                        )));
                    }
                    if let Some(bad) = data.iter().find(|v| v.width() != d.width) {
                        return Err(OysterError::new(format!(
                            "rom {} entry {bad} does not match width {}",
                            d.name, d.width
                        )));
                    }
                    mems.insert(d.name.clone(), (*addr_width, d.width, false));
                }
                _ => {
                    widths.insert(d.name.clone(), d.width);
                }
            }
        }

        let mut assigned: HashMap<String, ()> = HashMap::new();
        let mut wire_widths: HashMap<String, u32> = HashMap::new();
        for (i, stmt) in self.stmts.iter().enumerate() {
            match stmt {
                Stmt::Assign { var, expr } => {
                    let w = self.expr_width(expr, &widths, &mems).map_err(|e| {
                        OysterError::new(format!("statement {}: {}", i + 1, e.message))
                    })?;
                    if assigned.contains_key(var) {
                        return Err(OysterError::new(format!("{var} assigned more than once")));
                    }
                    match self.decl(var).map(|d| &d.kind) {
                        Some(DeclKind::Input) => {
                            return Err(OysterError::new(format!("cannot assign to input {var}")));
                        }
                        Some(DeclKind::Hole) => {
                            return Err(OysterError::new(format!("cannot assign to hole {var}")));
                        }
                        Some(DeclKind::Memory { .. } | DeclKind::Rom { .. }) => {
                            return Err(OysterError::new(format!(
                                "cannot assign to memory {var}; use write"
                            )));
                        }
                        Some(DeclKind::Output | DeclKind::Register) => {
                            let dw = widths[var];
                            if dw != w {
                                return Err(OysterError::new(format!(
                                    "assignment to {var}: declared width {dw}, expression width {w}"
                                )));
                            }
                        }
                        None => {
                            // New wire; first assignment defines its width.
                            widths.insert(var.clone(), w);
                            wire_widths.insert(var.clone(), w);
                        }
                    }
                    assigned.insert(var.clone(), ());
                }
                Stmt::Write { mem, addr, data, enable } => {
                    let Some(&(aw, dw, writable)) = mems.get(mem) else {
                        return Err(OysterError::new(format!("write to undeclared memory {mem}")));
                    };
                    if !writable {
                        return Err(OysterError::new(format!("cannot write to rom {mem}")));
                    }
                    let a = self.expr_width(addr, &widths, &mems)?;
                    let d = self.expr_width(data, &widths, &mems)?;
                    let _e = self.expr_width(enable, &widths, &mems)?;
                    if a != aw {
                        return Err(OysterError::new(format!(
                            "write to {mem}: address width {a}, expected {aw}"
                        )));
                    }
                    if d != dw {
                        return Err(OysterError::new(format!(
                            "write to {mem}: data width {d}, expected {dw}"
                        )));
                    }
                }
            }
        }
        Ok(wire_widths)
    }

    fn expr_width(
        &self,
        expr: &Expr,
        widths: &HashMap<String, u32>,
        mems: &HashMap<String, (u32, u32, bool)>,
    ) -> Result<u32, OysterError> {
        match expr {
            Expr::Var(n) => widths
                .get(n)
                .copied()
                .ok_or_else(|| OysterError::new(format!("unknown identifier {n}"))),
            Expr::Const(c) => Ok(c.width()),
            Expr::Not(a) => self.expr_width(a, widths, mems),
            Expr::Binop(op, a, b) => {
                let x = self.expr_width(a, widths, mems)?;
                let y = self.expr_width(b, widths, mems)?;
                if x != y {
                    return Err(OysterError::new(format!(
                        "operator {} width mismatch: {x} vs {y}",
                        op.symbol()
                    )));
                }
                Ok(if op.is_predicate() { 1 } else { x })
            }
            Expr::Ite(c, t, e) => {
                let _ = self.expr_width(c, widths, mems)?;
                let x = self.expr_width(t, widths, mems)?;
                let y = self.expr_width(e, widths, mems)?;
                if x != y {
                    return Err(OysterError::new(format!("if branches differ: {x} vs {y}")));
                }
                Ok(x)
            }
            Expr::Extract(a, high, low) => {
                let w = self.expr_width(a, widths, mems)?;
                if high < low || *high >= w {
                    return Err(OysterError::new(format!(
                        "extract [{high}:{low}] out of range for width {w}"
                    )));
                }
                Ok(high - low + 1)
            }
            Expr::Concat(a, b) => {
                Ok(self.expr_width(a, widths, mems)?
                    + self.expr_width(b, widths, mems)?)
            }
            Expr::ZExt(a, w) | Expr::SExt(a, w) => {
                let x = self.expr_width(a, widths, mems)?;
                if *w < x {
                    return Err(OysterError::new(format!("extension to {w} below width {x}")));
                }
                Ok(*w)
            }
            Expr::Read(mem, addr) => {
                let Some(&(aw, dw, _)) = mems.get(mem) else {
                    return Err(OysterError::new(format!("read from undeclared memory {mem}")));
                };
                let a = self.expr_width(addr, widths, mems)?;
                if a != aw {
                    return Err(OysterError::new(format!(
                        "read from {mem}: address width {a}, expected {aw}"
                    )));
                }
                Ok(dw)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Design {
        let mut d = Design::new("acc_machine");
        d.input("go", 1)
            .input("val", 2)
            .register("acc", 8)
            .output("out", 8)
            .hole("sel", 1);
        d.assign(
            "acc",
            Expr::ite(
                Expr::var("sel"),
                Expr::var("acc").add(Expr::var("val").zext(8)),
                Expr::var("acc"),
            ),
        );
        d.assign("out", Expr::var("acc"));
        d
    }

    #[test]
    fn valid_design_checks() {
        assert!(sample().check().is_ok());
    }

    #[test]
    fn duplicate_decl_rejected() {
        let mut d = sample();
        d.input("go", 1);
        assert!(d.check().is_err());
    }

    #[test]
    fn assign_to_input_rejected() {
        let mut d = sample();
        d.assign("go", Expr::const_u64(1, 0));
        assert!(d.check().is_err());
    }

    #[test]
    fn double_assign_rejected() {
        let mut d = sample();
        d.assign("out", Expr::var("acc"));
        assert!(d.check().is_err());
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut d = Design::new("bad");
        d.input("a", 4).input("b", 8);
        d.assign("x", Expr::var("a").add(Expr::var("b")));
        let err = d.check().unwrap_err();
        assert!(err.to_string().contains("width mismatch"));
    }

    #[test]
    fn wires_infer_widths() {
        let mut d = Design::new("wires");
        d.input("a", 4);
        d.assign("w", Expr::var("a").concat(Expr::var("a")));
        d.assign("v", Expr::var("w").extract(5, 2));
        let wires = d.check().unwrap();
        assert_eq!(wires["w"], 8);
        assert_eq!(wires["v"], 4);
    }

    #[test]
    fn unknown_identifier_rejected() {
        let mut d = Design::new("bad");
        d.assign("x", Expr::var("mystery"));
        assert!(d.check().is_err());
    }

    #[test]
    fn memory_write_width_checked() {
        let mut d = Design::new("m");
        d.input("addr", 4).input("data", 8).memory("ram", 4, 8);
        d.write("ram", Expr::var("addr"), Expr::var("data"), Expr::const_u64(1, 1));
        assert!(d.check().is_ok());
        let mut bad = Design::new("m2");
        bad.input("addr", 3).input("data", 8).memory("ram", 4, 8);
        bad.write("ram", Expr::var("addr"), Expr::var("data"), Expr::const_u64(1, 1));
        assert!(bad.check().is_err());
    }

    #[test]
    fn rom_write_rejected() {
        let mut d = Design::new("r");
        d.input("a", 2).rom("table", 2, 8, vec![BitVec::zero(8); 4]);
        d.write("table", Expr::var("a"), Expr::const_u64(8, 0), Expr::const_u64(1, 1));
        assert!(d.check().is_err());
    }

    #[test]
    fn hole_names_listed() {
        assert_eq!(sample().hole_names(), vec!["sel".to_string()]);
    }

    #[test]
    fn free_vars_collects() {
        let e = Expr::ite(
            Expr::var("c"),
            Expr::var("a").add(Expr::var("b")),
            Expr::read("m", Expr::var("p")),
        );
        let mut vars = Vec::new();
        e.free_vars(&mut vars);
        assert_eq!(vars, vec!["c", "a", "b", "p"]);
    }
}
