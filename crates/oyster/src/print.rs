//! The Oyster text format printer. Output re-parses to an equal design
//! (round-trip stability is property-tested).

use crate::ir::{BinOp, Decl, DeclKind, Design, Expr, Stmt};
use std::fmt;

/// Operator precedence for minimal parenthesization. Higher binds tighter.
pub(crate) fn precedence(op: BinOp) -> u8 {
    match op {
        BinOp::Mul => 7,
        BinOp::Add | BinOp::Sub => 6,
        BinOp::Shl | BinOp::Lshr | BinOp::Ashr => 5,
        BinOp::And => 4,
        BinOp::Xor => 3,
        BinOp::Or => 2,
        BinOp::Eq | BinOp::Neq | BinOp::Ult | BinOp::Ule | BinOp::Slt | BinOp::Sle => 1,
    }
}

fn write_expr(f: &mut fmt::Formatter<'_>, e: &Expr, parent_prec: u8) -> fmt::Result {
    match e {
        Expr::Var(n) => write!(f, "{n}"),
        Expr::Const(c) => write!(f, "{c}"),
        Expr::Not(a) => {
            write!(f, "~")?;
            write_expr(f, a, 8)
        }
        Expr::Binop(op, a, b) => {
            let p = precedence(*op);
            if p < parent_prec {
                write!(f, "(")?;
            }
            write_expr(f, a, p)?;
            write!(f, " {} ", op.symbol())?;
            // Left associative: right child needs strictly higher context.
            write_expr(f, b, p + 1)?;
            if p < parent_prec {
                write!(f, ")")?;
            }
            Ok(())
        }
        Expr::Ite(c, t, el) => {
            if parent_prec > 0 {
                write!(f, "(")?;
            }
            write!(f, "if ")?;
            write_expr(f, c, 1)?;
            write!(f, " then ")?;
            write_expr(f, t, 1)?;
            write!(f, " else ")?;
            write_expr(f, el, 0)?;
            if parent_prec > 0 {
                write!(f, ")")?;
            }
            Ok(())
        }
        Expr::Extract(a, high, low) => {
            write!(f, "extract(")?;
            write_expr(f, a, 0)?;
            write!(f, ", {high}, {low})")
        }
        Expr::Concat(a, b) => {
            write!(f, "concat(")?;
            write_expr(f, a, 0)?;
            write!(f, ", ")?;
            write_expr(f, b, 0)?;
            write!(f, ")")
        }
        Expr::ZExt(a, w) => {
            write!(f, "zext(")?;
            write_expr(f, a, 0)?;
            write!(f, ", {w})")
        }
        Expr::SExt(a, w) => {
            write!(f, "sext(")?;
            write_expr(f, a, 0)?;
            write!(f, ", {w})")
        }
        Expr::Read(mem, addr) => {
            write!(f, "{mem}[")?;
            write_expr(f, addr, 0)?;
            write!(f, "]")
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_expr(f, self, 0)
    }
}

impl fmt::Display for Decl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            DeclKind::Input => write!(f, "input {} {}", self.name, self.width),
            DeclKind::Output => write!(f, "output {} {}", self.name, self.width),
            DeclKind::Register => write!(f, "register {} {}", self.name, self.width),
            DeclKind::Memory { addr_width } => {
                write!(f, "memory {} {} {}", self.name, addr_width, self.width)
            }
            DeclKind::Rom { addr_width, data } => {
                write!(f, "rom {} {} {} [", self.name, addr_width, self.width)?;
                for (i, v) in data.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            DeclKind::Hole => write!(f, "hole {} {}", self.name, self.width),
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::Assign { var, expr } => write!(f, "{var} := {expr}"),
            Stmt::Write { mem, addr, data, enable } => {
                write!(f, "write {mem}[{addr}] := {data} when {enable}")
            }
        }
    }
}

impl fmt::Display for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "design {}", self.name())?;
        for d in self.decls() {
            writeln!(f, "{d}")?;
        }
        for s in self.stmts() {
            writeln!(f, "{s}")?;
        }
        writeln!(f, "end")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_bitvec::BitVec;

    #[test]
    fn expr_precedence_printing() {
        let e = Expr::var("a").add(Expr::var("b")).and(Expr::var("c"));
        // (+) binds tighter than (&) so no parens needed on the left.
        assert_eq!(e.to_string(), "a + b & c");
        let e2 = Expr::var("a").add(Expr::var("b").and(Expr::var("c")));
        assert_eq!(e2.to_string(), "a + (b & c)");
    }

    #[test]
    fn ite_and_functions_print() {
        let e = Expr::ite(
            Expr::var("c").eq(Expr::const_u64(2, 1)),
            Expr::var("x").extract(3, 0),
            Expr::var("y").zext(4),
        );
        assert_eq!(e.to_string(), "if c == 2'x1 then extract(x, 3, 0) else zext(y, 4)");
    }

    #[test]
    fn design_prints_sections() {
        let mut d = Design::new("demo");
        d.input("a", 4).register("r", 4).memory("m", 2, 4);
        d.rom("t", 1, 4, vec![BitVec::from_u64(4, 1), BitVec::from_u64(4, 2)]);
        d.assign("r", Expr::var("a"));
        d.write("m", Expr::var("a").extract(1, 0), Expr::var("r"), Expr::const_u64(1, 1));
        let text = d.to_string();
        assert!(text.starts_with("design demo\n"));
        assert!(text.contains("input a 4\n"));
        assert!(text.contains("memory m 2 4\n"));
        assert!(text.contains("rom t 1 4 [4'x1 4'x2]\n"));
        assert!(text.contains("write m[extract(a, 1, 0)] := r when 1'x1\n"));
        assert!(text.ends_with("end\n"));
    }

    #[test]
    fn nested_read_prints_with_index_syntax() {
        let e = Expr::read("rf", Expr::var("i").add(Expr::const_u64(5, 1)));
        assert_eq!(e.to_string(), "rf[i + 5'x01]");
    }
}
