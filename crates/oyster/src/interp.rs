//! The cycle-accurate concrete interpreter for Oyster designs.
//!
//! "An Oyster interpreter is essentially a cycle-accurate simulator for
//! synchronous hardware designs" — registers and memory writes take
//! effect at the end of each cycle; wires are evaluated in statement
//! order within a cycle.

use crate::ir::{BinOp, DeclKind, Design, Expr, OysterError, Stmt};
use owl_bitvec::BitVec;
use std::collections::HashMap;

/// Concrete contents of a memory during simulation: a sparse map with a
/// default value for untouched addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemState {
    map: HashMap<u64, BitVec>,
    default: BitVec,
}

impl MemState {
    /// A memory whose every address holds `default`.
    #[must_use]
    pub fn filled(default: BitVec) -> Self {
        MemState { map: HashMap::new(), default }
    }

    /// Reads the word at `addr`.
    #[must_use]
    pub fn read(&self, addr: u64) -> BitVec {
        self.map.get(&addr).cloned().unwrap_or_else(|| self.default.clone())
    }

    /// Writes `data` at `addr`.
    pub fn write(&mut self, addr: u64, data: BitVec) {
        self.map.insert(addr, data);
    }

    /// Number of explicitly written addresses.
    #[must_use]
    pub fn touched(&self) -> usize {
        self.map.len()
    }

    /// Iterates over the explicitly written `(address, data)` pairs, in
    /// unspecified order.
    pub fn entries(&self) -> impl Iterator<Item = (u64, &BitVec)> + '_ {
        self.map.iter().map(|(&a, d)| (a, d))
    }

    /// The value read at untouched addresses.
    #[must_use]
    pub fn default_value(&self) -> &BitVec {
        &self.default
    }
}

/// Values computed during one simulated cycle.
#[derive(Debug, Clone)]
pub struct CycleOutput {
    /// Final values of declared outputs.
    pub outputs: HashMap<String, BitVec>,
    /// Values of all wires evaluated this cycle (including outputs).
    pub wires: HashMap<String, BitVec>,
    /// Memory writes committed at the end of this cycle, in statement
    /// order: `(memory, address, data)`. Only enabled writes appear.
    pub writes: Vec<(String, u64, BitVec)>,
}

/// A cycle-accurate simulator for a hole-free Oyster design.
///
/// # Examples
///
/// ```
/// use owl_bitvec::BitVec;
/// use owl_oyster::{Design, Interpreter};
/// use std::collections::HashMap;
///
/// let design: Design =
///     "design counter\nregister count 8\noutput out 8\n\
///      count := count + 8'x01\nout := count\nend\n".parse()?;
/// let mut sim = Interpreter::new(&design)?;
/// let out = sim.step(&HashMap::new())?;
/// assert_eq!(out.outputs["out"], BitVec::zero(8)); // pre-increment value
/// assert_eq!(sim.reg("count").unwrap(), &BitVec::from_u64(8, 1));
/// # Ok::<(), owl_oyster::OysterError>(())
/// ```
#[derive(Debug)]
pub struct Interpreter<'d> {
    design: &'d Design,
    regs: HashMap<String, BitVec>,
    mems: HashMap<String, MemState>,
    roms: HashMap<String, (u32, Vec<BitVec>)>,
}

impl<'d> Interpreter<'d> {
    /// Creates a simulator with all registers and memories zeroed.
    ///
    /// # Errors
    ///
    /// Returns an error if the design fails [`Design::check`] or still
    /// contains holes (simulate only completed designs).
    pub fn new(design: &'d Design) -> Result<Self, OysterError> {
        design.check()?;
        if !design.hole_names().is_empty() {
            return Err(OysterError::new(format!(
                "cannot simulate a sketch with holes: {:?}",
                design.hole_names()
            )));
        }
        let mut regs = HashMap::new();
        let mut mems = HashMap::new();
        let mut roms = HashMap::new();
        for d in design.decls() {
            match &d.kind {
                DeclKind::Register => {
                    regs.insert(d.name.clone(), BitVec::zero(d.width));
                }
                DeclKind::Memory { .. } => {
                    mems.insert(d.name.clone(), MemState::filled(BitVec::zero(d.width)));
                }
                DeclKind::Rom { addr_width, data } => {
                    roms.insert(d.name.clone(), (*addr_width, data.clone()));
                }
                _ => {}
            }
        }
        Ok(Interpreter { design, regs, mems, roms })
    }

    /// Current value of a register.
    #[must_use]
    pub fn reg(&self, name: &str) -> Option<&BitVec> {
        self.regs.get(name)
    }

    /// Sets a register (for initializing simulations).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown registers or width mismatches.
    pub fn set_reg(&mut self, name: &str, value: BitVec) -> Result<(), OysterError> {
        let slot = self
            .regs
            .get_mut(name)
            .ok_or_else(|| OysterError::new(format!("unknown register {name}")))?;
        if slot.width() != value.width() {
            return Err(OysterError::new(format!(
                "register {name} width {} vs value width {}",
                slot.width(),
                value.width()
            )));
        }
        *slot = value;
        Ok(())
    }

    /// Current contents of a memory.
    #[must_use]
    pub fn mem(&self, name: &str) -> Option<&MemState> {
        self.mems.get(name)
    }

    /// Writes a memory word directly (for loading programs and data).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown memories or width mismatches.
    pub fn poke_mem(&mut self, name: &str, addr: u64, data: BitVec) -> Result<(), OysterError> {
        let mem = self
            .mems
            .get_mut(name)
            .ok_or_else(|| OysterError::new(format!("unknown memory {name}")))?;
        if mem.default.width() != data.width() {
            return Err(OysterError::new(format!(
                "memory {name} width {} vs data width {}",
                mem.default.width(),
                data.width()
            )));
        }
        mem.write(addr, data);
        Ok(())
    }

    /// Simulates one cycle with the given input values.
    ///
    /// # Errors
    ///
    /// Returns an error if an input is missing or has the wrong width.
    pub fn step(&mut self, inputs: &HashMap<String, BitVec>) -> Result<CycleOutput, OysterError> {
        // Validate inputs.
        for d in self.design.decls() {
            if d.kind == DeclKind::Input {
                let v = inputs.get(&d.name).ok_or_else(|| {
                    OysterError::new(format!("missing value for input {}", d.name))
                })?;
                if v.width() != d.width {
                    return Err(OysterError::new(format!(
                        "input {} width {} vs supplied width {}",
                        d.name,
                        d.width,
                        v.width()
                    )));
                }
            }
        }

        let mut wires: HashMap<String, BitVec> = HashMap::new();
        let mut next_regs: Vec<(String, BitVec)> = Vec::new();
        let mut mem_writes: Vec<(String, u64, BitVec)> = Vec::new();

        for stmt in self.design.stmts() {
            match stmt {
                Stmt::Assign { var, expr } => {
                    let value = self.eval(expr, inputs, &wires)?;
                    if self.regs.contains_key(var) {
                        next_regs.push((var.clone(), value));
                    } else {
                        wires.insert(var.clone(), value);
                    }
                }
                Stmt::Write { mem, addr, data, enable } => {
                    let en = self.eval(enable, inputs, &wires)?;
                    if en.is_true() {
                        let a = self.eval(addr, inputs, &wires)?;
                        let d = self.eval(data, inputs, &wires)?;
                        let a64 = a.to_u64().ok_or_else(|| {
                            OysterError::new(format!(
                                "write to {mem}: address value exceeds 64 bits (width {})",
                                a.width()
                            ))
                        })?;
                        mem_writes.push((mem.clone(), a64, d));
                    }
                }
            }
        }

        // Commit synchronous state.
        for (name, value) in next_regs {
            self.regs.insert(name, value);
        }
        for (mem, addr, data) in &mem_writes {
            self.mems.get_mut(mem).expect("checked memory").write(*addr, data.clone());
        }

        let mut outputs = HashMap::new();
        for d in self.design.decls() {
            if d.kind == DeclKind::Output {
                let v = wires
                    .get(&d.name)
                    .cloned()
                    .unwrap_or_else(|| BitVec::zero(d.width));
                outputs.insert(d.name.clone(), v);
            }
        }
        Ok(CycleOutput { outputs, wires, writes: mem_writes })
    }

    fn eval(
        &self,
        expr: &Expr,
        inputs: &HashMap<String, BitVec>,
        wires: &HashMap<String, BitVec>,
    ) -> Result<BitVec, OysterError> {
        Ok(match expr {
            Expr::Var(n) => {
                if let Some(v) = wires.get(n) {
                    v.clone()
                } else if let Some(v) = self.regs.get(n) {
                    v.clone()
                } else if let Some(v) = inputs.get(n) {
                    v.clone()
                } else {
                    return Err(OysterError::new(format!("unbound identifier {n}")));
                }
            }
            Expr::Const(c) => c.clone(),
            Expr::Not(a) => self.eval(a, inputs, wires)?.not(),
            Expr::Binop(op, a, b) => {
                let x = self.eval(a, inputs, wires)?;
                let y = self.eval(b, inputs, wires)?;
                match op {
                    BinOp::And => x.and(&y),
                    BinOp::Or => x.or(&y),
                    BinOp::Xor => x.xor(&y),
                    BinOp::Add => x.add(&y),
                    BinOp::Sub => x.sub(&y),
                    BinOp::Mul => x.mul(&y),
                    BinOp::Shl => x.shl(&y),
                    BinOp::Lshr => x.lshr(&y),
                    BinOp::Ashr => x.ashr(&y),
                    BinOp::Eq => BitVec::from_bool(x == y),
                    BinOp::Neq => BitVec::from_bool(x != y),
                    BinOp::Ult => BitVec::from_bool(x.ult(&y)),
                    BinOp::Ule => BitVec::from_bool(x.ule(&y)),
                    BinOp::Slt => BitVec::from_bool(x.slt(&y)),
                    BinOp::Sle => BitVec::from_bool(x.sle(&y)),
                }
            }
            Expr::Ite(c, t, e) => {
                if self.eval(c, inputs, wires)?.is_true() {
                    self.eval(t, inputs, wires)?
                } else {
                    self.eval(e, inputs, wires)?
                }
            }
            Expr::Extract(a, high, low) => self.eval(a, inputs, wires)?.extract(*high, *low),
            Expr::Concat(a, b) => {
                let hi = self.eval(a, inputs, wires)?;
                let lo = self.eval(b, inputs, wires)?;
                hi.concat(&lo)
            }
            Expr::ZExt(a, w) => self.eval(a, inputs, wires)?.zext(*w),
            Expr::SExt(a, w) => self.eval(a, inputs, wires)?.sext(*w),
            Expr::Read(mem, addr) => {
                let a = self.eval(addr, inputs, wires)?;
                let a64 = a.to_u64().ok_or_else(|| {
                    OysterError::new(format!(
                        "read from {mem}: address value exceeds 64 bits (width {})",
                        a.width()
                    ))
                })?;
                if let Some(m) = self.mems.get(mem) {
                    m.read(a64)
                } else if let Some((_, data)) = self.roms.get(mem) {
                    let dw = self.design.decl(mem).expect("checked").width;
                    data.get(a64 as usize).cloned().unwrap_or_else(|| BitVec::zero(dw))
                } else {
                    return Err(OysterError::new(format!("unbound memory {mem}")));
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(pairs: &[(&str, u32, u64)]) -> HashMap<String, BitVec> {
        pairs
            .iter()
            .map(|&(n, w, v)| (n.to_string(), BitVec::from_u64(w, v)))
            .collect()
    }

    #[test]
    fn counter_counts() {
        let d: Design = "design c\nregister count 8\noutput out 8\n\
                         count := count + 8'x01\nout := count\nend\n"
            .parse()
            .unwrap();
        let mut sim = Interpreter::new(&d).unwrap();
        for i in 0..300u64 {
            let out = sim.step(&HashMap::new()).unwrap();
            assert_eq!(out.outputs["out"], BitVec::from_u64(8, i)); // wraps at 256
        }
    }

    #[test]
    fn accumulator_machine() {
        let d: Design = "design acc\ninput go 1\ninput val 4\nregister acc 8\noutput out 8\n\
                         acc := if go then acc + zext(val, 8) else acc\nout := acc\nend\n"
            .parse()
            .unwrap();
        let mut sim = Interpreter::new(&d).unwrap();
        sim.step(&inputs(&[("go", 1, 1), ("val", 4, 5)])).unwrap();
        sim.step(&inputs(&[("go", 1, 0), ("val", 4, 9)])).unwrap();
        sim.step(&inputs(&[("go", 1, 1), ("val", 4, 7)])).unwrap();
        assert_eq!(sim.reg("acc").unwrap(), &BitVec::from_u64(8, 12));
    }

    #[test]
    fn memory_write_takes_effect_next_cycle() {
        let d: Design = "design m\ninput addr 4\ninput data 8\ninput en 1\n\
                         memory ram 4 8\noutput out 8\n\
                         out := ram[addr]\n\
                         write ram[addr] := data when en\n\
                         end\n"
            .parse()
            .unwrap();
        let mut sim = Interpreter::new(&d).unwrap();
        let o1 = sim.step(&inputs(&[("addr", 4, 3), ("data", 8, 0xAB), ("en", 1, 1)])).unwrap();
        // Read happened before the write committed.
        assert_eq!(o1.outputs["out"], BitVec::zero(8));
        let o2 = sim.step(&inputs(&[("addr", 4, 3), ("data", 8, 0), ("en", 1, 0)])).unwrap();
        assert_eq!(o2.outputs["out"], BitVec::from_u64(8, 0xAB));
    }

    #[test]
    fn rom_reads() {
        let d: Design = "design r\ninput a 2\nrom t 2 8 [10 20 30]\noutput out 8\n\
                         out := t[a]\nend\n"
            .parse()
            .unwrap();
        let mut sim = Interpreter::new(&d).unwrap();
        let o = sim.step(&inputs(&[("a", 2, 2)])).unwrap();
        assert_eq!(o.outputs["out"], BitVec::from_u64(8, 30));
        // Out-of-range entry reads zero.
        let o = sim.step(&inputs(&[("a", 2, 3)])).unwrap();
        assert_eq!(o.outputs["out"], BitVec::zero(8));
    }

    #[test]
    fn wires_chain_within_cycle() {
        let d: Design = "design w\ninput a 8\noutput out 8\n\
                         x := a + 8'x01\ny := x * 8'x02\nout := y\nend\n"
            .parse()
            .unwrap();
        let mut sim = Interpreter::new(&d).unwrap();
        let o = sim.step(&inputs(&[("a", 8, 5)])).unwrap();
        assert_eq!(o.outputs["out"], BitVec::from_u64(8, 12));
        assert_eq!(o.wires["x"], BitVec::from_u64(8, 6));
    }

    #[test]
    fn holes_rejected() {
        let d: Design = "design h\nhole s 1\nregister r 8\nr := if s then r else r\nend\n"
            .parse()
            .unwrap();
        assert!(Interpreter::new(&d).is_err());
    }

    #[test]
    fn missing_input_rejected() {
        let d: Design = "design i\ninput a 8\nx := a\nend\n".parse().unwrap();
        let mut sim = Interpreter::new(&d).unwrap();
        assert!(sim.step(&HashMap::new()).is_err());
        assert!(sim.step(&inputs(&[("a", 4, 0)])).is_err()); // wrong width
    }

    #[test]
    fn poke_and_inspect_state() {
        let d: Design = "design p\nregister r 8\nmemory m 4 8\nr := r\nend\n".parse().unwrap();
        let mut sim = Interpreter::new(&d).unwrap();
        sim.set_reg("r", BitVec::from_u64(8, 77)).unwrap();
        sim.poke_mem("m", 2, BitVec::from_u64(8, 99)).unwrap();
        assert_eq!(sim.reg("r").unwrap().to_u64(), Some(77));
        assert_eq!(sim.mem("m").unwrap().read(2).to_u64(), Some(99));
        assert_eq!(sim.mem("m").unwrap().read(3).to_u64(), Some(0));
        assert!(sim.set_reg("r", BitVec::zero(4)).is_err());
        assert!(sim.set_reg("nope", BitVec::zero(8)).is_err());
    }

    #[test]
    fn register_reads_old_value_during_cycle() {
        // Swap-like behaviour: both next-values computed from old values.
        let d: Design = "design swap\nregister a 8\nregister b 8\n\
                         a := b\nb := a\nend\n"
            .parse()
            .unwrap();
        let mut sim = Interpreter::new(&d).unwrap();
        sim.set_reg("a", BitVec::from_u64(8, 1)).unwrap();
        sim.set_reg("b", BitVec::from_u64(8, 2)).unwrap();
        sim.step(&HashMap::new()).unwrap();
        assert_eq!(sim.reg("a").unwrap().to_u64(), Some(2));
        assert_eq!(sim.reg("b").unwrap().to_u64(), Some(1));
    }
}
