//! The symbolic evaluator: the concrete interpreter's semantics lifted to
//! `owl_smt` terms.
//!
//! Running a sketch for `k` cycles produces a [`SymbolicTrace`] with one
//! [`Snapshot`] per time step: snapshot 0 is the unconstrained initial
//! state (the paper's TimeStep 1 for reads), and snapshot `i` is the state
//! after the `i`-th cycle's register and memory commits. Inputs are one
//! symbolic value each, held constant over the evaluated window; holes
//! become fresh symbolic variables that the synthesizer later constrains
//! or substitutes.
//!
//! Memories follow the paper's model: an uninterpreted base array plus an
//! association list of (address, data, enable) writes; reads compile to
//! if-then-else chains over the write list.

use crate::ir::{BinOp, DeclKind, Design, Expr, OysterError, Stmt};
use owl_smt::{ArrayId, RomId, TermId, TermManager};
use std::collections::HashMap;

/// Symbolic contents of a memory: base array plus ordered conditional
/// writes.
#[derive(Debug, Clone)]
pub struct SymbolicMem {
    /// The uninterpreted initial contents.
    pub base: ArrayId,
    /// Writes applied so far: `(address, data, enable)`, oldest first.
    pub writes: Vec<(TermId, TermId, TermId)>,
}

impl SymbolicMem {
    /// Builds the read term for `addr` over the current write list.
    pub fn read(&self, mgr: &mut TermManager, addr: TermId) -> TermId {
        let mut acc = mgr.array_select(self.base, addr);
        for &(waddr, wdata, wen) in &self.writes {
            let same = mgr.eq(addr, waddr);
            let en = mgr.red_or(wen);
            let hit = mgr.and(same, en);
            acc = mgr.ite(hit, wdata, acc);
        }
        acc
    }
}

/// The symbolic state visible at one time step.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Register values.
    pub regs: HashMap<String, TermId>,
    /// Memory contents.
    pub mems: HashMap<String, SymbolicMem>,
    /// Wires evaluated during the cycle that *produced* this snapshot
    /// (empty for snapshot 0).
    pub wires: HashMap<String, TermId>,
    /// Output values for that cycle (empty for snapshot 0).
    pub outputs: HashMap<String, TermId>,
}

/// The result of symbolically evaluating a sketch for `k` cycles.
#[derive(Debug, Clone)]
pub struct SymbolicTrace {
    /// One symbolic variable per input.
    pub inputs: HashMap<String, TermId>,
    /// Initial register values (fresh variables).
    pub initial_regs: HashMap<String, TermId>,
    /// Uninterpreted base array per memory.
    pub mem_bases: HashMap<String, ArrayId>,
    /// Fresh variable per hole.
    pub holes: HashMap<String, TermId>,
    /// ROM handles per ROM declaration.
    pub roms: HashMap<String, RomId>,
    /// Snapshots `0..=k`; index 0 is the initial state.
    pub snapshots: Vec<Snapshot>,
}

impl SymbolicTrace {
    /// The number of evaluated cycles.
    #[must_use]
    pub fn cycles(&self) -> usize {
        self.snapshots.len() - 1
    }

    /// The snapshot at time step `t` where `t = 1` is the initial state
    /// (the paper's TimeStep numbering: step `t` is the state after
    /// updating state elements with the results of step `t - 1`).
    ///
    /// # Panics
    ///
    /// Panics if `t == 0` or `t > cycles() + 1`.
    #[must_use]
    pub fn at_time(&self, t: u32) -> &Snapshot {
        assert!(t >= 1, "time steps are 1-based");
        &self.snapshots[(t - 1) as usize]
    }

    /// The state of the memories *after* cycle `t` has committed
    /// (i.e. the write-list contents at snapshot index `t`).
    ///
    /// # Panics
    ///
    /// Panics if `t > cycles()`.
    #[must_use]
    pub fn after_cycle(&self, t: u32) -> &Snapshot {
        &self.snapshots[t as usize]
    }
}

/// Evaluates Oyster designs symbolically.
#[derive(Debug, Default)]
pub struct SymbolicEvaluator;

impl SymbolicEvaluator {
    /// Symbolically runs `design` for `cycles` cycles.
    ///
    /// # Errors
    ///
    /// Returns an error if the design fails [`Design::check`].
    pub fn run(
        mgr: &mut TermManager,
        design: &Design,
        cycles: u32,
    ) -> Result<SymbolicTrace, OysterError> {
        design.check()?;
        let mut inputs = HashMap::new();
        let mut initial_regs = HashMap::new();
        let mut mem_bases = HashMap::new();
        let mut holes = HashMap::new();
        let mut roms = HashMap::new();
        let mut mems: HashMap<String, SymbolicMem> = HashMap::new();

        for d in design.decls() {
            match &d.kind {
                DeclKind::Input => {
                    inputs.insert(d.name.clone(), mgr.fresh_var(&d.name, d.width));
                }
                DeclKind::Register => {
                    initial_regs
                        .insert(d.name.clone(), mgr.fresh_var(format!("{}@0", d.name), d.width));
                }
                DeclKind::Memory { addr_width } => {
                    let base = mgr.fresh_array(&d.name, *addr_width, d.width);
                    mem_bases.insert(d.name.clone(), base);
                    mems.insert(d.name.clone(), SymbolicMem { base, writes: Vec::new() });
                }
                DeclKind::Rom { addr_width, data } => {
                    roms.insert(
                        d.name.clone(),
                        mgr.rom(&d.name, *addr_width, d.width, data.clone()),
                    );
                }
                DeclKind::Hole => {
                    holes.insert(d.name.clone(), mgr.fresh_var(format!("??{}", d.name), d.width));
                }
                DeclKind::Output => {}
            }
        }

        let mut regs = initial_regs.clone();
        let mut snapshots = vec![Snapshot {
            regs: regs.clone(),
            mems: mems.clone(),
            wires: HashMap::new(),
            outputs: HashMap::new(),
        }];

        for _cycle in 0..cycles {
            let mut wires: HashMap<String, TermId> = HashMap::new();
            let mut next_regs: Vec<(String, TermId)> = Vec::new();
            let mut writes: Vec<(String, TermId, TermId, TermId)> = Vec::new();

            for stmt in design.stmts() {
                match stmt {
                    Stmt::Assign { var, expr } => {
                        let value = Self::eval(
                            mgr, expr, &inputs, &regs, &wires, &holes, &mems, &roms,
                        )?;
                        if regs.contains_key(var) {
                            next_regs.push((var.clone(), value));
                        } else {
                            wires.insert(var.clone(), value);
                        }
                    }
                    Stmt::Write { mem, addr, data, enable } => {
                        let a = Self::eval(
                            mgr, addr, &inputs, &regs, &wires, &holes, &mems, &roms,
                        )?;
                        let dv = Self::eval(
                            mgr, data, &inputs, &regs, &wires, &holes, &mems, &roms,
                        )?;
                        let en = Self::eval(
                            mgr, enable, &inputs, &regs, &wires, &holes, &mems, &roms,
                        )?;
                        writes.push((mem.clone(), a, dv, en));
                    }
                }
            }

            for (name, value) in next_regs {
                regs.insert(name, value);
            }
            for (mem, a, dv, en) in writes {
                mems.get_mut(&mem).expect("checked memory").writes.push((a, dv, en));
            }

            let mut outputs = HashMap::new();
            for d in design.decls() {
                if d.kind == DeclKind::Output {
                    if let Some(&v) = wires.get(&d.name) {
                        outputs.insert(d.name.clone(), v);
                    }
                }
            }
            snapshots.push(Snapshot {
                regs: regs.clone(),
                mems: mems.clone(),
                wires,
                outputs,
            });
        }

        Ok(SymbolicTrace { inputs, initial_regs, mem_bases, holes, roms, snapshots })
    }

    #[allow(clippy::too_many_arguments)]
    fn eval(
        mgr: &mut TermManager,
        expr: &Expr,
        inputs: &HashMap<String, TermId>,
        regs: &HashMap<String, TermId>,
        wires: &HashMap<String, TermId>,
        holes: &HashMap<String, TermId>,
        mems: &HashMap<String, SymbolicMem>,
        roms: &HashMap<String, RomId>,
    ) -> Result<TermId, OysterError> {
        Ok(match expr {
            Expr::Var(n) => {
                if let Some(&v) = wires.get(n) {
                    v
                } else if let Some(&v) = regs.get(n) {
                    v
                } else if let Some(&v) = inputs.get(n) {
                    v
                } else if let Some(&v) = holes.get(n) {
                    v
                } else {
                    return Err(OysterError::new(format!("unbound identifier {n}")));
                }
            }
            Expr::Const(c) => mgr.bv_const(c.clone()),
            Expr::Not(a) => {
                let av = Self::eval(mgr, a, inputs, regs, wires, holes, mems, roms)?;
                mgr.not(av)
            }
            Expr::Binop(op, a, b) => {
                let x = Self::eval(mgr, a, inputs, regs, wires, holes, mems, roms)?;
                let y = Self::eval(mgr, b, inputs, regs, wires, holes, mems, roms)?;
                match op {
                    BinOp::And => mgr.and(x, y),
                    BinOp::Or => mgr.or(x, y),
                    BinOp::Xor => mgr.xor(x, y),
                    BinOp::Add => mgr.add(x, y),
                    BinOp::Sub => mgr.sub(x, y),
                    BinOp::Mul => mgr.mul(x, y),
                    BinOp::Shl => mgr.shl(x, y),
                    BinOp::Lshr => mgr.lshr(x, y),
                    BinOp::Ashr => mgr.ashr(x, y),
                    BinOp::Eq => mgr.eq(x, y),
                    BinOp::Neq => mgr.neq(x, y),
                    BinOp::Ult => mgr.ult(x, y),
                    BinOp::Ule => mgr.ule(x, y),
                    BinOp::Slt => mgr.slt(x, y),
                    BinOp::Sle => mgr.sle(x, y),
                }
            }
            Expr::Ite(c, t, e) => {
                let cv = Self::eval(mgr, c, inputs, regs, wires, holes, mems, roms)?;
                let tv = Self::eval(mgr, t, inputs, regs, wires, holes, mems, roms)?;
                let ev = Self::eval(mgr, e, inputs, regs, wires, holes, mems, roms)?;
                mgr.ite(cv, tv, ev)
            }
            Expr::Extract(a, high, low) => {
                let av = Self::eval(mgr, a, inputs, regs, wires, holes, mems, roms)?;
                mgr.extract(av, *high, *low)
            }
            Expr::Concat(a, b) => {
                let hv = Self::eval(mgr, a, inputs, regs, wires, holes, mems, roms)?;
                let lv = Self::eval(mgr, b, inputs, regs, wires, holes, mems, roms)?;
                mgr.concat(hv, lv)
            }
            Expr::ZExt(a, w) => {
                let av = Self::eval(mgr, a, inputs, regs, wires, holes, mems, roms)?;
                mgr.zext(av, *w)
            }
            Expr::SExt(a, w) => {
                let av = Self::eval(mgr, a, inputs, regs, wires, holes, mems, roms)?;
                mgr.sext(av, *w)
            }
            Expr::Read(mem, addr) => {
                let av = Self::eval(mgr, addr, inputs, regs, wires, holes, mems, roms)?;
                if let Some(m) = mems.get(mem) {
                    m.read(mgr, av)
                } else if let Some(&rom) = roms.get(mem) {
                    mgr.rom_select(rom, av)
                } else {
                    return Err(OysterError::new(format!("unbound memory {mem}")));
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_bitvec::BitVec;
    use owl_smt::{solve, Env, SmtResult, TermKind};

    fn sym_of(mgr: &TermManager, t: TermId) -> owl_smt::SymbolId {
        match *mgr.kind(t) {
            TermKind::Var(s) => s,
            _ => panic!("not a variable"),
        }
    }

    #[test]
    fn counter_trace_matches_concrete() {
        let d: Design = "design c\nregister count 8\ncount := count + 8'x01\nend\n"
            .parse()
            .unwrap();
        let mut mgr = TermManager::new();
        let trace = SymbolicEvaluator::run(&mut mgr, &d, 3).unwrap();
        assert_eq!(trace.cycles(), 3);
        // With count@0 = 5, snapshot 3 count must be 8.
        let mut env = Env::new();
        env.set_var(sym_of(&mgr, trace.initial_regs["count"]), BitVec::from_u64(8, 5));
        let final_count = trace.snapshots[3].regs["count"];
        assert_eq!(env.eval(&mgr, final_count), BitVec::from_u64(8, 8));
    }

    #[test]
    fn symbolic_counter_is_provably_increment() {
        let d: Design = "design c\nregister count 8\ncount := count + 8'x01\nend\n"
            .parse()
            .unwrap();
        let mut mgr = TermManager::new();
        let trace = SymbolicEvaluator::run(&mut mgr, &d, 1).unwrap();
        let init = trace.initial_regs["count"];
        let after = trace.snapshots[1].regs["count"];
        let one = mgr.const_u64(8, 1);
        let expect = mgr.add(init, one);
        let bad = mgr.neq(after, expect);
        assert!(solve(&mut mgr, &[bad], None).result.is_unsat());
    }

    #[test]
    fn memory_write_then_read_chains() {
        let d: Design = "design m\ninput addr 4\ninput data 8\n\
                         memory ram 4 8\n\
                         write ram[addr] := data when 1'x1\n\
                         end\n"
            .parse()
            .unwrap();
        let mut mgr = TermManager::new();
        let trace = SymbolicEvaluator::run(&mut mgr, &d, 1).unwrap();
        // After the cycle, reading back at `addr` must give `data`.
        let addr = trace.inputs["addr"];
        let data = trace.inputs["data"];
        let mem = trace.snapshots[1].mems["ram"].clone();
        let rd = mem.read(&mut mgr, addr);
        let bad = mgr.neq(rd, data);
        assert!(solve(&mut mgr, &[bad], None).result.is_unsat());
        // Reading a *different* address can differ from data.
        let other = mgr.fresh_var("other", 4);
        let rd2 = mem.read(&mut mgr, other);
        let distinct = mgr.neq(other, addr);
        let differs = mgr.neq(rd2, data);
        assert!(matches!(solve(&mut mgr, &[distinct, differs], None).result, SmtResult::Sat(_)));
    }

    #[test]
    fn holes_become_variables() {
        let d: Design = "design h\ninput a 8\nhole sel 1\nregister r 8\n\
                         r := if sel then a else r\nend\n"
            .parse()
            .unwrap();
        let mut mgr = TermManager::new();
        let trace = SymbolicEvaluator::run(&mut mgr, &d, 1).unwrap();
        assert!(trace.holes.contains_key("sel"));
        // With sel = 1, r@1 == a must be valid.
        let sel = trace.holes["sel"];
        let a = trace.inputs["a"];
        let r1 = trace.snapshots[1].regs["r"];
        let one = mgr.tru();
        let sel_is_1 = mgr.eq(sel, one);
        let bad = mgr.neq(r1, a);
        assert!(solve(&mut mgr, &[sel_is_1, bad], None).result.is_unsat());
    }

    #[test]
    fn disabled_write_leaves_memory() {
        let d: Design = "design m\ninput addr 4\ninput data 8\nmemory ram 4 8\n\
                         write ram[addr] := data when 1'x0\nend\n"
            .parse()
            .unwrap();
        let mut mgr = TermManager::new();
        let trace = SymbolicEvaluator::run(&mut mgr, &d, 1).unwrap();
        let addr = trace.inputs["addr"];
        let mem_after = trace.snapshots[1].mems["ram"].clone();
        let rd = mem_after.read(&mut mgr, addr);
        let base_rd = mgr.array_select(trace.mem_bases["ram"], addr);
        // Enable folded to false, so the read short-circuits to the base.
        assert_eq!(rd, base_rd);
    }

    #[test]
    fn at_time_is_one_based_initial() {
        let d: Design = "design c\nregister r 8\nr := r + 8'x01\nend\n".parse().unwrap();
        let mut mgr = TermManager::new();
        let trace = SymbolicEvaluator::run(&mut mgr, &d, 2).unwrap();
        assert_eq!(trace.at_time(1).regs["r"], trace.initial_regs["r"]);
        assert_eq!(trace.at_time(3).regs["r"], trace.snapshots[2].regs["r"]);
    }

    #[test]
    fn wires_recorded_per_cycle() {
        let d: Design = "design w\ninput a 8\nvalid := a == 8'x00\nend\n".parse().unwrap();
        let mut mgr = TermManager::new();
        let trace = SymbolicEvaluator::run(&mut mgr, &d, 2).unwrap();
        assert!(trace.snapshots[0].wires.is_empty());
        assert!(trace.snapshots[1].wires.contains_key("valid"));
        assert!(trace.snapshots[2].wires.contains_key("valid"));
    }
}
