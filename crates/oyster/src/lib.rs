//! The Oyster hardware intermediate representation.
//!
//! Oyster is the paper's HDL-level IR "designed to be amenable to
//! HDL-level program synthesis" (Fig. 5): a design is a set of
//! declarations (inputs, outputs, registers, memories, and *holes* where
//! control logic is missing) followed by a sequence of statements
//! describing combinational dataflow and synchronous state updates.
//!
//! This crate provides:
//!
//! - the IR itself ([`Design`], [`Decl`], [`Stmt`], [`Expr`]) with a
//!   width-checking validator;
//! - a text format parser and printer (round-trip stable), used for the
//!   paper's "sketch size in lines of Oyster" metric;
//! - a cycle-accurate concrete [`Interpreter`] ("essentially a
//!   cycle-accurate simulator for synchronous hardware designs"); and
//! - a [`SymbolicEvaluator`] that lifts the same semantics to
//!   [`owl_smt`] terms, producing one state snapshot per time step — the
//!   Rosette-style "symbolic interpreter for free".
//!
//! All designs are synchronous with a single implicit clock: writes to
//! registers and memories take effect in the next cycle.
//!
//! # Examples
//!
//! ```
//! use owl_oyster::Design;
//!
//! let text = "design counter\nregister count 8\ncount := count + 8'x01\nend\n";
//! let design: Design = text.parse()?;
//! assert_eq!(design.name(), "counter");
//! # Ok::<(), owl_oyster::OysterError>(())
//! ```

mod interp;
mod ir;
mod parse;
mod print;
mod sym;

pub use interp::{CycleOutput, Interpreter, MemState};
pub use ir::{BinOp, Decl, DeclKind, Design, Expr, OysterError, Stmt};
pub use sym::{Snapshot, SymbolicEvaluator, SymbolicMem, SymbolicTrace};
