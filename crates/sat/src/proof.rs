//! DRUP-style proof logging and independent certification.
//!
//! When certification is enabled ([`crate::Solver::enable_certification`])
//! the solver records every input clause as it was added and every clause
//! its conflict analysis learned, in order. The [`ProofChecker`] replays
//! that trail with its own unit-propagation engine — deliberately separate
//! code from the solver's CDCL loop — verifying each learned clause by
//! reverse unit propagation (RUP) and finally that the accumulated clauses
//! propagate to a conflict, which certifies an UNSAT answer.
//! [`ProofChecker::check_model`] independently evaluates every recorded
//! input clause under a SAT assignment, certifying SAT answers.
//!
//! The checker shares no data structures with the solver: it rebuilds its
//! clause database from the log, so a solver bug (or an injected fault
//! that diverges the log from the real search) surfaces as a
//! [`ProofError`] instead of a silently wrong answer.

use crate::{Lit, Var};

/// A recorded refutation trail: the original clauses plus every clause
/// learned by conflict analysis, in derivation order.
///
/// The fields are public so tests can corrupt a log (flip a literal,
/// truncate the trail) and assert the checker rejects it.
#[derive(Debug, Clone, Default)]
pub struct ProofLog {
    /// Input clauses exactly as given to `add_clause` (sorted, deduped,
    /// but *not* simplified against the solver's assignment).
    pub inputs: Vec<Vec<Lit>>,
    /// Learned clauses in the order conflict analysis derived them.
    /// Each must be a RUP consequence of the inputs and earlier steps.
    pub steps: Vec<Vec<Lit>>,
    /// Segment boundaries for incremental solving: a snapshot of
    /// `(inputs.len(), steps.len())` taken at the end of every *decided*
    /// solve call (Sat or Unsat). [`ProofChecker::check_segment`] replays
    /// exactly the prefix recorded at a boundary, so each incremental
    /// Unsat answer can be certified against the clauses that existed
    /// when it was given — later additions cannot retroactively "help"
    /// an earlier refutation.
    pub segments: Vec<(usize, usize)>,
}

impl ProofLog {
    /// True if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty() && self.steps.is_empty()
    }

    /// Records the current log lengths as a segment boundary. Called by
    /// the solver at the end of each decided solve; consecutive solves
    /// with no intervening additions or learning collapse into one
    /// boundary rather than duplicating it.
    pub fn mark_segment(&mut self) {
        let snap = (self.inputs.len(), self.steps.len());
        if self.segments.last() != Some(&snap) {
            self.segments.push(snap);
        }
    }
}

/// Why a proof log or model failed certification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofError {
    /// The learned clause at `step` is not implied by reverse unit
    /// propagation over the clauses before it: the trail is corrupt.
    NotImplied {
        /// Index into [`ProofLog::steps`].
        step: usize,
    },
    /// Every step checked out but the clauses never propagate to a
    /// conflict: the trail does not refute the formula (e.g. truncated).
    NoRefutation,
    /// An input clause evaluates to false under the claimed model.
    FalsifiedClause {
        /// Index into [`ProofLog::inputs`].
        clause: usize,
    },
    /// A literal references a variable outside the declared range.
    UnknownVariable {
        /// The out-of-range variable index.
        var: usize,
    },
}

impl std::fmt::Display for ProofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProofError::NotImplied { step } => {
                write!(f, "proof step {step} is not implied by unit propagation")
            }
            ProofError::NoRefutation => {
                write!(f, "proof trail does not derive a refutation")
            }
            ProofError::FalsifiedClause { clause } => {
                write!(f, "input clause {clause} is falsified by the claimed model")
            }
            ProofError::UnknownVariable { var } => {
                write!(f, "proof references unknown variable {var}")
            }
        }
    }
}

impl std::error::Error for ProofError {}

const UNDEF: i8 = 0;
const TRUE: i8 = 1;
const FALSE: i8 = -1;

/// An independent forward DRUP checker.
///
/// Maintains its own clause database, two-watched-literal lists and a
/// single-level assignment stack. Root assignments (from unit clauses and
/// their consequences) are permanent; RUP tests push temporary
/// assumptions and roll back.
pub struct ProofChecker {
    clauses: Vec<Vec<Lit>>,
    /// Per literal code: indices of clauses watching that literal.
    watch: Vec<Vec<usize>>,
    value: Vec<i8>,
    trail: Vec<Lit>,
    qhead: usize,
}

enum Added {
    Fine,
    RootConflict,
}

impl ProofChecker {
    fn new(num_vars: usize) -> Self {
        ProofChecker {
            clauses: Vec::new(),
            watch: vec![Vec::new(); num_vars * 2],
            value: vec![UNDEF; num_vars],
            trail: Vec::new(),
            qhead: 0,
        }
    }

    /// Certifies an UNSAT answer: replays `proof`, RUP-checking every
    /// learned step, and requires the accumulated clauses to propagate to
    /// a conflict. Returns the number of steps consumed before the
    /// refutation closed.
    ///
    /// Only meaningful for solves without assumptions: an `Unsat` under
    /// assumptions is not a refutation of the formula itself.
    pub fn check_unsat(num_vars: usize, proof: &ProofLog) -> Result<usize, ProofError> {
        Self::check_prefix(num_vars, proof, proof.inputs.len(), proof.steps.len())
    }

    /// Certifies the incremental answer recorded at segment boundary
    /// `idx` (an index into [`ProofLog::segments`]) by replaying only the
    /// prefix of the log that existed when that answer was given. This
    /// is sound because RUP checking is monotone in the clause set: a
    /// refutation that closes from a prefix also closes from any
    /// extension, and checking the prefix proves the refutation did not
    /// lean on clauses added later.
    ///
    /// A boundary recorded for a *Sat* answer carries no refutation, so
    /// checking it yields [`ProofError::NoRefutation`] — use
    /// [`ProofChecker::check_model`] for Sat answers instead.
    ///
    /// # Panics
    /// Panics if `idx` is out of range for `proof.segments`.
    pub fn check_segment(
        num_vars: usize,
        proof: &ProofLog,
        idx: usize,
    ) -> Result<usize, ProofError> {
        let (num_inputs, num_steps) = proof.segments[idx];
        Self::check_prefix(num_vars, proof, num_inputs, num_steps)
    }

    fn check_prefix(
        num_vars: usize,
        proof: &ProofLog,
        num_inputs: usize,
        num_steps: usize,
    ) -> Result<usize, ProofError> {
        let mut ck = ProofChecker::new(num_vars);
        for clause in &proof.inputs[..num_inputs] {
            ck.validate(clause)?;
            if let Added::RootConflict = ck.add_root_clause(clause) {
                return Ok(0);
            }
        }
        for (i, clause) in proof.steps[..num_steps].iter().enumerate() {
            ck.validate(clause)?;
            if !ck.rup(clause) {
                return Err(ProofError::NotImplied { step: i });
            }
            if let Added::RootConflict = ck.add_root_clause(clause) {
                return Ok(i + 1);
            }
        }
        Err(ProofError::NoRefutation)
    }

    /// Certifies a SAT answer: every recorded input clause must contain a
    /// literal true under `value`. Unassigned variables count as
    /// falsifying, so partial models are rejected.
    pub fn check_model(
        proof: &ProofLog,
        value: impl Fn(Var) -> Option<bool>,
    ) -> Result<(), ProofError> {
        for (i, clause) in proof.inputs.iter().enumerate() {
            let satisfied = clause
                .iter()
                .any(|&l| value(l.var()).map(|v| v ^ l.is_negative()).unwrap_or(false));
            if !satisfied {
                return Err(ProofError::FalsifiedClause { clause: i });
            }
        }
        Ok(())
    }

    fn validate(&self, clause: &[Lit]) -> Result<(), ProofError> {
        for &l in clause {
            if l.var().index() >= self.value.len() {
                return Err(ProofError::UnknownVariable { var: l.var().index() });
            }
        }
        Ok(())
    }

    fn lit_value(&self, l: Lit) -> i8 {
        let v = self.value[l.var().index()];
        if l.is_negative() {
            -v
        } else {
            v
        }
    }

    fn assign(&mut self, l: Lit) {
        debug_assert_eq!(self.lit_value(l), UNDEF);
        self.value[l.var().index()] = if l.is_negative() { FALSE } else { TRUE };
        self.trail.push(l);
    }

    /// Adds a clause at the root level, simplified against the permanent
    /// root assignment (sound because root assignments are never undone).
    fn add_root_clause(&mut self, clause: &[Lit]) -> Added {
        debug_assert_eq!(self.qhead, self.trail.len());
        let mut reduced: Vec<Lit> = Vec::with_capacity(clause.len());
        for &l in clause {
            match self.lit_value(l) {
                TRUE => return Added::Fine, // permanently satisfied
                FALSE => {}
                _ => reduced.push(l),
            }
        }
        reduced.sort_unstable();
        reduced.dedup();
        for i in 0..reduced.len().saturating_sub(1) {
            if reduced[i + 1] == !reduced[i] {
                return Added::Fine; // tautology
            }
        }
        match reduced.len() {
            0 => Added::RootConflict,
            1 => {
                self.assign(reduced[0]);
                if self.propagate().is_some() {
                    Added::RootConflict
                } else {
                    Added::Fine
                }
            }
            _ => {
                let idx = self.clauses.len();
                self.watch[reduced[0].code()].push(idx);
                self.watch[reduced[1].code()].push(idx);
                self.clauses.push(reduced);
                Added::Fine
            }
        }
    }

    /// Reverse unit propagation: assume the negation of `clause`,
    /// propagate, and report whether a conflict followed. The temporary
    /// assumptions are rolled back either way.
    fn rup(&mut self, clause: &[Lit]) -> bool {
        let mark = self.trail.len();
        let mut conflict = false;
        for &l in clause {
            match self.lit_value(l) {
                // A root-true literal means the clause is already entailed.
                TRUE => {
                    conflict = true;
                    break;
                }
                FALSE => {}
                _ => self.assign(!l),
            }
        }
        if !conflict {
            conflict = self.propagate().is_some();
        }
        for i in (mark..self.trail.len()).rev() {
            self.value[self.trail[i].var().index()] = UNDEF;
        }
        self.trail.truncate(mark);
        self.qhead = mark;
        conflict
    }

    /// Two-watched-literal unit propagation, independent of the solver's.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let falsified = !p;
            let mut list = std::mem::take(&mut self.watch[falsified.code()]);
            let mut keep = 0;
            let mut i = 0;
            let mut conflict = None;
            while i < list.len() {
                let ci = list[i];
                i += 1;
                let mut lits = std::mem::take(&mut self.clauses[ci]);
                if lits[0] == falsified {
                    lits.swap(0, 1);
                }
                debug_assert_eq!(lits[1], falsified);
                let first = lits[0];
                if self.lit_value(first) == TRUE {
                    self.clauses[ci] = lits;
                    list[keep] = ci;
                    keep += 1;
                    continue;
                }
                let mut moved = false;
                for k in 2..lits.len() {
                    if self.lit_value(lits[k]) != FALSE {
                        lits.swap(1, k);
                        self.watch[lits[1].code()].push(ci);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    self.clauses[ci] = lits;
                    continue;
                }
                // Unit or conflicting.
                self.clauses[ci] = lits;
                list[keep] = ci;
                keep += 1;
                if self.lit_value(first) == FALSE {
                    while i < list.len() {
                        list[keep] = list[i];
                        keep += 1;
                        i += 1;
                    }
                    conflict = Some(ci);
                } else {
                    self.assign(first);
                }
            }
            list.truncate(keep);
            self.watch[falsified.code()] = list;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SolveOpts, SolveResult, Solver};

    fn certified_solver(nvars: usize, clauses: &[&[i32]]) -> (Solver, Vec<Var>) {
        let mut s = Solver::new();
        s.enable_certification();
        let vars: Vec<Var> = (0..nvars).map(|_| s.new_var()).collect();
        for c in clauses {
            s.add_clause(c.iter().map(|&i| {
                let v = vars[(i.unsigned_abs() - 1) as usize];
                Lit::with_sign(v, i > 0)
            }));
        }
        (s, vars)
    }

    /// x1 xor x2 = 1, x2 xor x3 = 1, x1 xor x3 = 1: unsatisfiable with a
    /// non-trivial refutation (needs actual learning).
    fn xor_unsat() -> (Solver, Vec<Var>) {
        certified_solver(3, &[&[1, 2], &[-1, -2], &[2, 3], &[-2, -3], &[1, 3], &[-1, -3]])
    }

    fn pigeonhole_certified(pigeons: usize, holes: usize) -> Solver {
        let mut s = Solver::new();
        s.enable_certification();
        let grid: Vec<Vec<Var>> =
            (0..pigeons).map(|_| (0..holes).map(|_| s.new_var()).collect()).collect();
        for row in &grid {
            s.add_clause(row.iter().map(|&v| Lit::positive(v)));
        }
        for h in 0..holes {
            for (p1, row1) in grid.iter().enumerate() {
                for row2 in &grid[p1 + 1..] {
                    s.add_clause([Lit::negative(row1[h]), Lit::negative(row2[h])]);
                }
            }
        }
        s
    }

    #[test]
    fn unsat_proof_verifies() {
        let (mut s, _) = xor_unsat();
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Unsat);
        let steps = ProofChecker::check_unsat(s.num_vars(), s.proof()).expect("valid proof");
        assert!(steps <= s.proof().steps.len());
    }

    #[test]
    fn pigeonhole_proof_verifies() {
        let mut s = pigeonhole_certified(5, 4);
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Unsat);
        assert!(!s.proof().steps.is_empty(), "expected learned clauses");
        ProofChecker::check_unsat(s.num_vars(), s.proof()).expect("valid proof");
    }

    #[test]
    fn sat_model_verifies() {
        let (mut s, _) = certified_solver(3, &[&[1, 2], &[-1, 3], &[-2, -3, 1]]);
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Sat);
        ProofChecker::check_model(s.proof(), |v| s.value(v)).expect("model satisfies inputs");
    }

    #[test]
    fn hand_mutated_model_is_rejected() {
        let (mut s, _) = certified_solver(3, &[&[1], &[1, 2], &[-1, 3]]);
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Sat);
        // Flip every variable: the unit clause must break.
        let flipped = |v: Var| s.value(v).map(|b| !b);
        assert!(ProofChecker::check_model(s.proof(), flipped).is_err());
    }

    #[test]
    fn partial_model_is_rejected() {
        let (mut s, vars) = certified_solver(2, &[&[1, 2]]);
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Sat);
        let hide = vars[0];
        let partial = |v: Var| if v == hide { None } else { Some(false) };
        assert!(matches!(
            ProofChecker::check_model(s.proof(), partial),
            Err(ProofError::FalsifiedClause { .. })
        ));
    }

    #[test]
    fn truncated_trail_is_rejected() {
        let mut s = pigeonhole_certified(5, 4);
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Unsat);
        let full = s.proof().clone();
        let needed = ProofChecker::check_unsat(s.num_vars(), &full).expect("valid proof");
        assert!(needed > 0, "refutation needs learned steps");
        let mut truncated = full.clone();
        truncated.steps.truncate(needed.saturating_sub(1));
        assert!(ProofChecker::check_unsat(s.num_vars(), &truncated).is_err());
    }

    #[test]
    fn non_implied_step_is_rejected() {
        // "Pigeon 0 sits in hole 0" is consistent with PHP's input clauses
        // but not a unit-propagation consequence of them, so a trail
        // claiming to have derived it must be flagged.
        let mut s = pigeonhole_certified(5, 4);
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Unsat);
        let mut corrupt = s.proof().clone();
        corrupt.steps.insert(0, vec![Lit::positive(Var::from_index(0))]);
        assert_eq!(
            ProofChecker::check_unsat(s.num_vars(), &corrupt),
            Err(ProofError::NotImplied { step: 0 })
        );
    }

    #[test]
    fn foreign_variable_is_rejected() {
        let (mut s, _) = xor_unsat();
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Unsat);
        let mut corrupt = s.proof().clone();
        corrupt.steps.insert(0, vec![Lit::positive(Var::from_index(99))]);
        assert_eq!(
            ProofChecker::check_unsat(s.num_vars(), &corrupt),
            Err(ProofError::UnknownVariable { var: 99 })
        );
    }

    #[test]
    fn empty_formula_has_no_refutation() {
        let proof = ProofLog::default();
        assert_eq!(ProofChecker::check_unsat(4, &proof), Err(ProofError::NoRefutation));
    }

    #[test]
    fn direct_contradiction_refutes_with_zero_steps() {
        let (mut s, _) = certified_solver(1, &[&[1], &[-1]]);
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Unsat);
        assert_eq!(ProofChecker::check_unsat(s.num_vars(), s.proof()), Ok(0));
    }

    #[test]
    fn spurious_restart_fault_leaves_proof_valid() {
        use crate::{Budget, Fault, FaultPlan};
        let plan = std::sync::Arc::new(FaultPlan::new().at(0, Fault::SpuriousRestart));
        let budget = Budget::unlimited().with_fault_plan(plan);
        let mut s = pigeonhole_certified(5, 4);
        assert_eq!(s.solve(&budget), SolveResult::Unsat);
        // A spurious restart perturbs the search but learns only real
        // clauses, so the recorded trail still certifies.
        s.certify_unsat().expect("proof valid despite injected restart");
    }

    #[test]
    fn phantom_conflict_fault_makes_no_claim() {
        use crate::{Budget, Fault, FaultPlan, StopReason};
        let plan = std::sync::Arc::new(FaultPlan::new().at(0, Fault::DelayConflicts(10)));
        let budget = Budget::unlimited().with_conflicts(Some(5)).with_fault_plan(plan);
        let mut s = pigeonhole_certified(5, 4);
        // Phantom conflicts burn the budget: the answer is Unknown, so
        // there is nothing to certify and no way to certify wrongly.
        assert_eq!(s.solve(&budget), SolveResult::Unknown);
        assert_eq!(s.stop_reason(), Some(StopReason::ConflictLimit));
        assert!(s.certify_unsat().is_err(), "incomplete search must not certify UNSAT");
    }

    #[test]
    fn corrupt_proof_fault_is_caught_by_checker() {
        use crate::{Budget, Fault, FaultPlan};
        let plan = std::sync::Arc::new(FaultPlan::new().at(0, Fault::CorruptProof));
        let budget = Budget::unlimited().with_fault_plan(plan);
        let mut s = pigeonhole_certified(5, 4);
        // The solver still answers correctly — only its log is garbled.
        assert_eq!(s.solve(&budget), SolveResult::Unsat);
        assert!(s.certify_unsat().is_err(), "checker must flag the corrupted trail");
        // A clean re-run of the same instance certifies.
        let mut clean = pigeonhole_certified(5, 4);
        assert_eq!(clean.solve(SolveOpts::default()), SolveResult::Unsat);
        clean.certify_unsat().expect("uncorrupted proof verifies");
    }

    #[test]
    fn proof_survives_incremental_additions() {
        let (mut s, vars) = certified_solver(3, &[&[1, 2], &[2, 3]]);
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Sat);
        // The Sat answer leaves a segment boundary and a model-checkable
        // input prefix.
        assert_eq!(s.proof().segments.len(), 1);
        ProofChecker::check_model(s.proof(), |v| s.value(v)).expect("sat model");
        s.reset_search();
        s.add_clause([Lit::negative(vars[1])]);
        s.add_clause([Lit::negative(vars[0])]);
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Unsat);
        // The full log still certifies after incremental additions...
        ProofChecker::check_unsat(s.num_vars(), s.proof()).expect("incremental proof");
        // ...and the Unsat answer's own segment certifies independently.
        let last = s.proof().segments.len() - 1;
        s.certify_unsat_segment(last).expect("last segment certifies the Unsat answer");
        // The earlier Sat segment carries no refutation, by design.
        assert_eq!(
            ProofChecker::check_segment(s.num_vars(), s.proof(), 0),
            Err(ProofError::NoRefutation)
        );
    }

    #[test]
    fn segment_boundaries_are_deduplicated() {
        let (mut s, _) = certified_solver(2, &[&[1, 2]]);
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Sat);
        s.reset_search();
        // Re-solving with nothing new recorded must not duplicate the
        // boundary.
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Sat);
        assert_eq!(s.proof().segments.len(), 1);
    }

    #[test]
    fn unsat_segment_ignores_later_additions() {
        // Refute, then add more clauses: the recorded Unsat segment must
        // replay only the prefix that existed at answer time.
        let (mut s, _) = certified_solver(2, &[&[1], &[-1]]);
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Unsat);
        let boundary = s.proof().segments[s.proof().segments.len() - 1];
        s.reset_search();
        s.add_clause([Lit::positive(Var::from_index(1))]);
        assert_eq!(s.proof().segments[s.proof().segments.len() - 1], boundary);
        s.certify_unsat_segment(s.proof().segments.len() - 1)
            .expect("segment prefix still refutes");
    }
}
