//! Shared deterministic hashing primitives.
//!
//! Several OWL layers need small, dependency-free, platform-stable hash
//! functions: the journal fingerprints its inputs with FNV-64 and guards
//! each record with CRC-32, the service derives retry-backoff jitter from
//! splitmix64, the fault harness picks seeded faults the same way, and
//! the synthesis cache keys entries by a strengthened FNV fingerprint.
//! These used to be re-rolled per crate; this module is the single
//! definition every layer shares, so the streams can never drift apart.
//!
//! None of these are cryptographic. They are chosen for determinism
//! across platforms and runs, not for adversarial collision resistance.

/// One step of the splitmix64 sequence: scrambles `x` into a
/// well-distributed 64-bit value. Feed it a counter (or the previous
/// output) for a cheap deterministic PRNG stream.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The in-place variant used by stateful samplers: advances `state` by
/// the splitmix64 increment and returns the scrambled output.
pub fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An incremental FNV-1a 64-bit hasher.
///
/// Used wherever OWL needs a stable content fingerprint: journal input
/// headers, cache keys, service job identities. The `field` helper
/// length-prefixes each chunk so `("ab", "c")` and `("a", "bc")` hash
/// differently.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the standard FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    /// A fresh hasher whose stream is keyed by `salt`, for deriving
    /// independent fingerprints of the same content (e.g. the two halves
    /// of a 128-bit cache key).
    #[must_use]
    pub fn with_salt(salt: u64) -> Self {
        let mut h = Self::new();
        h.update(&salt.to_le_bytes());
        h
    }

    /// Folds raw bytes into the hash.
    pub fn update(&mut self, bytes: impl AsRef<[u8]>) {
        for &b in bytes.as_ref() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Folds a length-prefixed field into the hash, so adjacent fields
    /// cannot alias by shifting bytes across their boundary.
    pub fn field(&mut self, bytes: impl AsRef<[u8]>) {
        let bytes = bytes.as_ref();
        self.update((bytes.len() as u64).to_le_bytes());
        self.update(bytes);
    }

    /// The digest so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// CRC-32 (IEEE, reflected) over `bytes`: the per-record integrity check
/// shared by the journal and the cache store. Bitwise, table-free — these
/// records are small and the decoder is the hot path only on resume.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_diverges_by_seed() {
        let xs: Vec<u64> = (0..8).map(splitmix64).collect();
        let ys: Vec<u64> = (0..8).map(splitmix64).collect();
        assert_eq!(xs, ys);
        assert_ne!(splitmix64(42), splitmix64(43));
        // Known-answer check so the constants can never silently change:
        // splitmix64(0) is the scramble of the golden-ratio increment.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn splitmix_next_matches_counter_form() {
        // The stateful stream seeded at s yields splitmix64(s), then
        // splitmix64 of the advanced state, i.e. the classic sequence.
        let mut state = 0u64;
        let first = splitmix64_next(&mut state);
        assert_eq!(first, splitmix64(0));
        assert_eq!(state, 0x9E37_79B9_7F4A_7C15);
        let second = splitmix64_next(&mut state);
        assert_eq!(second, splitmix64(state.wrapping_sub(0x9E37_79B9_7F4A_7C15)));
        assert_ne!(first, second);
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        let mut h = Fnv64::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.update(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.update(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn fnv_fields_do_not_alias_across_boundaries() {
        let digest = |fields: &[&[u8]]| {
            let mut h = Fnv64::new();
            for f in fields {
                h.field(f);
            }
            h.finish()
        };
        assert_ne!(digest(&[b"ab", b"c"]), digest(&[b"a", b"bc"]));
        assert_ne!(digest(&[b"ab"]), digest(&[b"ab", b""]));
    }

    #[test]
    fn fnv_salt_yields_independent_streams() {
        let mut a = Fnv64::with_salt(1);
        let mut b = Fnv64::with_salt(2);
        a.update(b"same content");
        b.update(b"same content");
        assert_ne!(a.finish(), b.finish());
        // Salt 0 is still distinct from the unsalted stream (the salt is
        // hashed in, not xored away).
        let mut z = Fnv64::with_salt(0);
        let mut plain = Fnv64::new();
        z.update(b"x");
        plain.update(b"x");
        assert_ne!(z.finish(), plain.finish());
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Single-bit damage is detected.
        let good = crc32(b"owl-cache record");
        let bad = crc32(b"owl-cachd record");
        assert_ne!(good, bad);
    }
}
