//! A CDCL SAT solver.
//!
//! This crate is the decision-procedure substrate for the OWL toolchain:
//! the `owl-smt` bit-blaster compiles bitvector synthesis and verification
//! queries to CNF and discharges them here (standing in for the
//! Boolector/CVC4 backends used by the paper's Rosette implementation).
//!
//! The solver implements the standard conflict-driven clause learning
//! architecture: two-watched-literal propagation, first-UIP conflict
//! analysis with clause minimization, VSIDS branching with phase saving,
//! and Luby restarts.
//!
//! # Examples
//!
//! ```
//! use owl_sat::{Lit, SolveOpts, SolveResult, Solver};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause([Lit::positive(a), Lit::positive(b)]);
//! solver.add_clause([Lit::negative(a)]);
//! assert_eq!(solver.solve(SolveOpts::default()), SolveResult::Sat);
//! assert_eq!(solver.value(b), Some(true));
//! ```
//!
//! Assumptions and resource budgets (deadlines, work limits,
//! cancellation, fault injection) are passed through the same entry
//! point via [`SolveOpts`]; see [`Budget`].

mod budget;
pub mod hash;
mod heap;
mod proof;
mod solver;

pub use budget::{
    Budget, CacheFault, CancelFlag, Fault, FaultPlan, Heartbeat, IoFault, ServiceFault, StopReason,
};
pub use proof::{ProofChecker, ProofError, ProofLog};
pub use solver::{SolveOpts, SolveResult, Solver, Stats};
// The observability handle rides the `Budget` into every layer, so
// re-export it (and the reporting API) for downstream convenience.
pub use owl_trace::{Report, Section, Tracer, Value};

/// A propositional variable, created by [`Solver::new_var`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(u32);

impl Var {
    /// The variable's dense index (0-based).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn from_index(index: usize) -> Self {
        Var(index as u32)
    }
}

/// A literal: a variable or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `var`.
    #[must_use]
    pub fn positive(var: Var) -> Self {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    #[must_use]
    pub fn negative(var: Var) -> Self {
        Lit(var.0 << 1 | 1)
    }

    /// Builds a literal from a variable and a sign; `value == false` gives
    /// the negated literal.
    #[must_use]
    pub fn with_sign(var: Var, value: bool) -> Self {
        if value {
            Self::positive(var)
        } else {
            Self::negative(var)
        }
    }

    /// The underlying variable.
    #[must_use]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// True if this is a negated literal.
    #[must_use]
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }

    /// Dense code usable as an array index (`2 * var + sign`).
    #[must_use]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn from_code(code: usize) -> Self {
        Lit(code as u32)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl std::fmt::Display for Lit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_negative() {
            write!(f, "-{}", self.var().0 + 1)
        } else {
            write!(f, "{}", self.var().0 + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_codes() {
        let v = Var(3);
        let p = Lit::positive(v);
        let n = Lit::negative(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(!p.is_negative());
        assert!(n.is_negative());
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_eq!(p.code(), 6);
        assert_eq!(n.code(), 7);
        assert_eq!(Lit::with_sign(v, true), p);
        assert_eq!(Lit::with_sign(v, false), n);
    }

    #[test]
    fn display_dimacs_style() {
        assert_eq!(Lit::positive(Var(0)).to_string(), "1");
        assert_eq!(Lit::negative(Var(4)).to_string(), "-5");
    }
}
