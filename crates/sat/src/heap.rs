//! Indexed max-heap ordered by variable activity, used for VSIDS
//! branching. Supports decrease/increase-key via a position index.

use crate::Var;

/// A binary max-heap over variables keyed by an external activity array.
#[derive(Debug, Default)]
pub(crate) struct VarHeap {
    heap: Vec<Var>,
    /// Position of each variable in `heap`, or `usize::MAX` if absent.
    position: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl VarHeap {
    pub(crate) fn new() -> Self {
        VarHeap::default()
    }

    /// Grows the position index to cover variable `var`.
    pub(crate) fn reserve(&mut self, var: Var) {
        if self.position.len() <= var.index() {
            self.position.resize(var.index() + 1, ABSENT);
        }
    }

    pub(crate) fn contains(&self, var: Var) -> bool {
        self.position.get(var.index()).is_some_and(|&p| p != ABSENT)
    }

    #[allow(dead_code)]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Inserts `var` (no-op if present).
    pub(crate) fn insert(&mut self, var: Var, activity: &[f64]) {
        self.reserve(var);
        if self.contains(var) {
            return;
        }
        let i = self.heap.len();
        self.heap.push(var);
        self.position[var.index()] = i;
        self.sift_up(i, activity);
    }

    /// Removes and returns the variable with the highest activity.
    pub(crate) fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("nonempty");
        self.position[top.index()] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restores heap order after `var`'s activity increased.
    pub(crate) fn update(&mut self, var: Var, activity: &[f64]) {
        if let Some(&p) = self.position.get(var.index()) {
            if p != ABSENT {
                self.sift_up(p, activity);
            }
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i].index()] <= activity[self.heap[parent].index()] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len()
                && activity[self.heap[l].index()] > activity[self.heap[best].index()]
            {
                best = l;
            }
            if r < self.heap.len()
                && activity[self.heap[r].index()] > activity[self.heap[best].index()]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.position[self.heap[i].index()] = i;
        self.position[self.heap[j].index()] = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![1.0, 5.0, 3.0, 4.0, 2.0];
        let mut heap = VarHeap::new();
        for i in 0..5 {
            heap.insert(Var::from_index(i), &activity);
        }
        let order: Vec<usize> =
            std::iter::from_fn(|| heap.pop(&activity)).map(Var::index).collect();
        assert_eq!(order, vec![1, 3, 2, 4, 0]);
        assert!(heap.is_empty());
    }

    #[test]
    fn insert_is_idempotent() {
        let activity = vec![1.0, 2.0];
        let mut heap = VarHeap::new();
        heap.insert(Var::from_index(0), &activity);
        heap.insert(Var::from_index(0), &activity);
        assert_eq!(heap.pop(&activity), Some(Var::from_index(0)));
        assert_eq!(heap.pop(&activity), None);
    }

    #[test]
    fn update_after_activity_bump() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut heap = VarHeap::new();
        for i in 0..3 {
            heap.insert(Var::from_index(i), &activity);
        }
        activity[0] = 10.0;
        heap.update(Var::from_index(0), &activity);
        assert_eq!(heap.pop(&activity), Some(Var::from_index(0)));
    }
}
