//! Resource governance for solver calls: deadlines, work limits,
//! cooperative cancellation, and deterministic fault injection.
//!
//! A [`Budget`] is a cheap-to-clone handle threaded from the synthesis
//! driver down into the CDCL loop. The solver consults it at conflict,
//! decision and restart boundaries, so a wall-clock deadline or an
//! external [`CancelFlag`] is observable *inside* a long-running query —
//! not only between queries. When a limit trips, the solver answers
//! [`SolveResult::Unknown`](crate::SolveResult::Unknown) and records the
//! [`StopReason`] for the caller's degradation policy (escalate, retry,
//! or report a typed partial failure).
//!
//! The module also hosts the [`FaultPlan`] test harness: a deterministic,
//! seed-driven hook that perturbs chosen solver-call indices (forced
//! `Unknown`s, spurious restarts, phantom conflicts, stalls) so every
//! degradation path can be exercised without pathological benchmarks.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a solver call stopped without an answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The shared [`CancelFlag`] was raised.
    Cancelled,
    /// The conflict limit was exhausted.
    ConflictLimit,
    /// The decision limit was exhausted.
    DecisionLimit,
    /// The propagation limit was exhausted.
    PropagationLimit,
    /// The learned-clause memory ceiling was hit and clause-database
    /// reduction could not free enough space.
    MemoryLimit,
    /// A watchdog supervisor judged this call stalled (no heartbeat
    /// progress) and raised its stall flag.
    Stalled,
    /// A [`FaultPlan`] forced this call to fail.
    FaultInjected,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            StopReason::Deadline => "deadline exceeded",
            StopReason::Cancelled => "cancelled",
            StopReason::ConflictLimit => "conflict limit exhausted",
            StopReason::DecisionLimit => "decision limit exhausted",
            StopReason::PropagationLimit => "propagation limit exhausted",
            StopReason::MemoryLimit => "memory ceiling exceeded",
            StopReason::Stalled => "stalled (watchdog)",
            StopReason::FaultInjected => "fault injected",
        };
        f.write_str(s)
    }
}

impl StopReason {
    /// True for the reasons that end the *whole run* (no point retrying
    /// this or any other query): deadline and cancellation.
    #[must_use]
    pub fn is_global(self) -> bool {
        matches!(self, StopReason::Deadline | StopReason::Cancelled)
    }
}

/// A shared cancellation flag. Cloning shares the underlying flag, so a
/// controller thread can cancel a solve running anywhere down the stack.
#[derive(Debug, Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// Creates a new, unraised flag.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag; every solver holding a clone stops cooperatively
    /// at its next budget checkpoint.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Lowers the flag again (for handle reuse across runs).
    pub fn clear(&self) {
        self.0.store(false, Ordering::Release);
    }

    /// True once [`CancelFlag::cancel`] has been called.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// A shared progress counter for watchdog supervision. The solver bumps
/// it at conflict and decision boundaries; a supervisor thread that sees
/// the count frozen while a task is in flight can declare the task
/// stalled and raise its stall flag. Cloning shares the counter.
#[derive(Debug, Clone, Default)]
pub struct Heartbeat(Arc<AtomicU64>);

impl Heartbeat {
    /// A fresh counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one unit of search progress.
    pub fn beat(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// The number of beats recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A deterministic fault to inject at one solver call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The call immediately answers `Unknown` with
    /// [`StopReason::FaultInjected`].
    ForceUnknown,
    /// The call starts with its restart counter at zero, forcing an
    /// immediate (harmless but observable) restart.
    SpuriousRestart,
    /// The call is charged this many phantom conflicts against its
    /// conflict limit, simulating a query that burns budget slowly.
    DelayConflicts(u64),
    /// The call sleeps this many milliseconds before searching,
    /// simulating a slow query so deadline handling can be tested
    /// deterministically.
    StallMillis(u64),
    /// The call garbles the next learned clause *in the proof log only*
    /// (the solver's database keeps the real clause), simulating a
    /// logging bug that an independent proof checker must catch.
    /// Harmless when certification is off or nothing is learned.
    CorruptProof,
    /// The call panics, exercising panic isolation in callers. Only
    /// injected explicitly, never by seeded plans.
    Panic,
}

/// A deterministic fault to inject at one journal I/O operation.
///
/// I/O faults live on a *separate* call counter from solver faults
/// ([`FaultPlan::io_at`] / [`FaultPlan::next_io_fault`]), so injecting
/// them never shifts the solver-call indices of a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// The write fails outright with an I/O error.
    WriteError,
    /// Only the first `n` bytes of the record reach the file (a torn
    /// write, as after a crash mid-`write(2)`).
    ShortWrite(usize),
    /// Bit `bit` (modulo the buffer length in bits) is flipped on read,
    /// simulating media corruption that the per-record CRC must catch.
    FlipBit(u64),
}

/// A deterministic fault to inject at one synthesis-cache operation.
///
/// Cache faults live on a *fourth* call counter, separate from solver,
/// journal I/O, and service faults ([`FaultPlan::cache_at`] /
/// [`FaultPlan::next_cache_fault`]), so a plan that perturbs the cache
/// never shifts the indices of the other channels. The injection points
/// mirror the journal I/O design: damage is introduced where real media
/// or concurrency bugs would introduce it, and the cache's CRC +
/// verify-on-hit defenses must degrade to a miss — never to a wrong
/// design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheFault {
    /// Bit `bit` (modulo the record length in bits) is flipped in the
    /// stored record before its CRC is checked, simulating on-disk
    /// corruption. The store must treat the record as damaged and
    /// report a miss.
    CorruptEntry(u64),
    /// The persistent store file is truncated to `len` bytes at this
    /// operation, simulating a torn tail after a crash mid-append.
    /// Intact earlier records must still be served.
    TruncateStore(u64),
    /// The lookup returns a structurally valid entry whose hole
    /// assignment has been deterministically perturbed — a poisoned hit
    /// that *passes* the CRC but must be rejected by the consumer's
    /// verify-on-hit check, costing one verification query and falling
    /// back to a fresh solve.
    PoisonHit,
}

/// A deterministic fault to inject at one synthesis-service scheduling
/// decision.
///
/// Service faults live on a *third* call counter, separate from both
/// solver faults and journal I/O faults ([`FaultPlan::service_at`] /
/// [`FaultPlan::next_service_fault`]), so a chaos plan that perturbs the
/// serving layer never shifts the indices of the other two channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceFault {
    /// The worker thread panics while executing the picked job,
    /// exercising the service's panic isolation and retry path.
    WorkerPanic,
    /// The scheduler's queue ordering is corrupted for this decision:
    /// the *worst*-ranked job is picked instead of the best. Every job
    /// must still complete correctly — only latency ordering degrades.
    QueueCorrupt,
    /// Deadline arithmetic for this decision sees a clock skewed forward
    /// by this many milliseconds, so jobs near their deadline may be
    /// judged expired early.
    SkewDeadline(u64),
}

#[derive(Debug)]
enum FaultMode {
    /// Faults at explicitly chosen call indices.
    Explicit(HashMap<u64, Fault>),
    /// Seed-driven: roughly one in `one_in` calls gets a fault, chosen
    /// deterministically from (seed, call index).
    Seeded { seed: u64, one_in: u64 },
}

/// A deterministic fault-injection plan, shared across every solver call
/// of a run. Call indices count *actual SAT solves* (constant-folded
/// queries never reach the solver and are not counted).
#[derive(Debug)]
pub struct FaultPlan {
    mode: FaultMode,
    counter: AtomicU64,
    /// I/O faults at explicitly chosen journal-operation indices; a
    /// separate channel with its own counter so journal traffic never
    /// consumes solver-call indices.
    io: HashMap<u64, IoFault>,
    io_counter: AtomicU64,
    /// Service faults at explicitly chosen scheduling-decision indices;
    /// a third channel with its own counter so chaos at the serving
    /// layer never consumes solver-call or I/O indices.
    service: HashMap<u64, ServiceFault>,
    service_counter: AtomicU64,
    /// Cache faults at explicitly chosen cache-operation indices; a
    /// fourth channel with its own counter so cache chaos never consumes
    /// the other channels' indices.
    cache: HashMap<u64, CacheFault>,
    cache_counter: AtomicU64,
}

impl FaultPlan {
    /// An empty plan (no faults); add some with [`FaultPlan::at`].
    #[must_use]
    pub fn new() -> Self {
        FaultPlan {
            mode: FaultMode::Explicit(HashMap::new()),
            counter: AtomicU64::new(0),
            io: HashMap::new(),
            io_counter: AtomicU64::new(0),
            service: HashMap::new(),
            service_counter: AtomicU64::new(0),
            cache: HashMap::new(),
            cache_counter: AtomicU64::new(0),
        }
    }

    /// Injects `fault` at the `call`-th solver invocation (0-based).
    #[must_use]
    pub fn at(mut self, call: u64, fault: Fault) -> Self {
        if let FaultMode::Explicit(map) = &mut self.mode {
            map.insert(call, fault);
        }
        self
    }

    /// A seed-driven plan: roughly one in `one_in` solver calls gets a
    /// fault. Which calls, and which fault, are pure functions of
    /// `(seed, call index)`, so a failing run replays exactly.
    #[must_use]
    pub fn seeded(seed: u64, one_in: u64) -> Self {
        FaultPlan {
            mode: FaultMode::Seeded { seed, one_in: one_in.max(1) },
            counter: AtomicU64::new(0),
            io: HashMap::new(),
            io_counter: AtomicU64::new(0),
            service: HashMap::new(),
            service_counter: AtomicU64::new(0),
            cache: HashMap::new(),
            cache_counter: AtomicU64::new(0),
        }
    }

    /// Injects `fault` at the `op`-th journal I/O operation (0-based,
    /// counted on the plan's dedicated I/O channel).
    #[must_use]
    pub fn io_at(mut self, op: u64, fault: IoFault) -> Self {
        self.io.insert(op, fault);
        self
    }

    /// Consumes the next I/O operation index and returns its fault, if
    /// any. Journal readers and writers call this once per operation.
    pub fn next_io_fault(&self) -> Option<IoFault> {
        let idx = self.io_counter.fetch_add(1, Ordering::Relaxed);
        self.io.get(&idx).copied()
    }

    /// How many journal I/O operations the plan has observed so far.
    #[must_use]
    pub fn io_calls_observed(&self) -> u64 {
        self.io_counter.load(Ordering::Relaxed)
    }

    /// Injects `fault` at the `decision`-th service scheduling decision
    /// (0-based, counted on the plan's dedicated service channel).
    #[must_use]
    pub fn service_at(mut self, decision: u64, fault: ServiceFault) -> Self {
        self.service.insert(decision, fault);
        self
    }

    /// Consumes the next scheduling-decision index and returns its
    /// fault, if any. The synthesis service calls this once per
    /// dispatch decision.
    pub fn next_service_fault(&self) -> Option<ServiceFault> {
        let idx = self.service_counter.fetch_add(1, Ordering::Relaxed);
        self.service.get(&idx).copied()
    }

    /// How many service scheduling decisions the plan has observed.
    #[must_use]
    pub fn service_calls_observed(&self) -> u64 {
        self.service_counter.load(Ordering::Relaxed)
    }

    /// Injects `fault` at the `op`-th cache operation (0-based, counted
    /// on the plan's dedicated cache channel).
    #[must_use]
    pub fn cache_at(mut self, op: u64, fault: CacheFault) -> Self {
        self.cache.insert(op, fault);
        self
    }

    /// Consumes the next cache operation index and returns its fault, if
    /// any. The synthesis cache calls this exactly once per lookup, so
    /// plan indices line up with the sequence of cache probes.
    pub fn next_cache_fault(&self) -> Option<CacheFault> {
        let idx = self.cache_counter.fetch_add(1, Ordering::Relaxed);
        self.cache.get(&idx).copied()
    }

    /// How many cache operations the plan has observed so far.
    #[must_use]
    pub fn cache_calls_observed(&self) -> u64 {
        self.cache_counter.load(Ordering::Relaxed)
    }

    /// Consumes the next call index and returns its fault, if any.
    pub fn next_fault(&self) -> Option<Fault> {
        let idx = self.counter.fetch_add(1, Ordering::Relaxed);
        match &self.mode {
            FaultMode::Explicit(map) => map.get(&idx).copied(),
            FaultMode::Seeded { seed, one_in } => {
                let h = splitmix64(seed ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                if !h.is_multiple_of(*one_in) {
                    return None;
                }
                Some(match (h >> 32) % 3 {
                    0 => Fault::ForceUnknown,
                    1 => Fault::SpuriousRestart,
                    _ => Fault::DelayConflicts(1 + (h >> 48)),
                })
            }
        }
    }

    /// How many solver calls the plan has observed so far.
    #[must_use]
    pub fn calls_observed(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::new()
    }
}

use crate::hash::splitmix64;
use owl_trace::Tracer;

/// The resource envelope for one or more solver calls.
///
/// All limits are per *call*; the deadline and cancel flag are shared
/// across calls (cloning a budget shares the flag and the fault plan).
/// The default budget is unlimited.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    conflicts: Option<u64>,
    decisions: Option<u64>,
    propagations: Option<u64>,
    /// Learned-clause memory ceiling in bytes, per solver. Hitting it
    /// triggers clause-database reduction; if reduction cannot get back
    /// under the ceiling the call stops with [`StopReason::MemoryLimit`].
    memory: Option<u64>,
    cancel: CancelFlag,
    /// Per-task stall flag raised by a watchdog supervisor. Unlike
    /// `cancel` it is not shared run-wide: each supervised task gets its
    /// own, so stalling one task never stops another.
    stall: Option<CancelFlag>,
    /// Progress counter bumped by the solver at conflict and decision
    /// boundaries, observed by the watchdog.
    heartbeat: Option<Heartbeat>,
    faults: Option<Arc<FaultPlan>>,
    /// Observability handle. A disabled tracer (the default) is a
    /// single `Option` check, so the hot path pays nothing; an enabled
    /// one rides the budget into every layer the budget reaches.
    tracer: Tracer,
}

impl Budget {
    /// An unlimited budget.
    #[must_use]
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Sets an absolute wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a deadline `limit` from now.
    #[must_use]
    pub fn with_deadline_in(self, limit: Duration) -> Self {
        self.with_deadline(Instant::now() + limit)
    }

    /// Sets (or clears) the per-call conflict limit.
    #[must_use]
    pub fn with_conflicts(mut self, limit: Option<u64>) -> Self {
        self.conflicts = limit;
        self
    }

    /// Sets (or clears) the per-call decision limit.
    #[must_use]
    pub fn with_decisions(mut self, limit: Option<u64>) -> Self {
        self.decisions = limit;
        self
    }

    /// Sets (or clears) the per-call propagation limit.
    #[must_use]
    pub fn with_propagations(mut self, limit: Option<u64>) -> Self {
        self.propagations = limit;
        self
    }

    /// Sets (or clears) the learned-clause memory ceiling in bytes.
    #[must_use]
    pub fn with_memory(mut self, bytes: Option<u64>) -> Self {
        self.memory = bytes;
        self
    }

    /// Attaches a shared cancellation flag.
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelFlag) -> Self {
        self.cancel = cancel;
        self
    }

    /// Attaches a per-task stall flag (raised by a watchdog supervisor).
    #[must_use]
    pub fn with_stall_flag(mut self, stall: CancelFlag) -> Self {
        self.stall = Some(stall);
        self
    }

    /// Attaches a shared progress counter for watchdog supervision.
    #[must_use]
    pub fn with_heartbeat(mut self, heartbeat: Heartbeat) -> Self {
        self.heartbeat = Some(heartbeat);
        self
    }

    /// Attaches a shared fault-injection plan.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Attaches a tracer; every layer the budget reaches emits spans
    /// and counters onto it. The default is the disabled tracer.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The attached tracer (disabled by default).
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The per-call conflict limit, if any.
    #[must_use]
    pub fn conflict_limit(&self) -> Option<u64> {
        self.conflicts
    }

    /// The per-call decision limit, if any.
    #[must_use]
    pub fn decision_limit(&self) -> Option<u64> {
        self.decisions
    }

    /// The per-call propagation limit, if any.
    #[must_use]
    pub fn propagation_limit(&self) -> Option<u64> {
        self.propagations
    }

    /// The learned-clause memory ceiling in bytes, if any.
    #[must_use]
    pub fn memory_limit(&self) -> Option<u64> {
        self.memory
    }

    /// The shared cancellation flag.
    #[must_use]
    pub fn cancel_flag(&self) -> &CancelFlag {
        &self.cancel
    }

    /// Records one unit of search progress on the attached heartbeat
    /// counter, if any. Called by the solver at conflict and decision
    /// boundaries; cheap enough to sit on the hot path.
    pub fn heartbeat_tick(&self) {
        if let Some(hb) = &self.heartbeat {
            hb.beat();
        }
    }

    /// Time remaining until the deadline (`None` = no deadline).
    #[must_use]
    pub fn time_left(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// The cheap checkpoint: cancellation first, then the deadline, then
    /// the watchdog's stall flag. Returns the stop reason if the budget
    /// is already spent.
    #[must_use]
    pub fn checkpoint(&self) -> Option<StopReason> {
        if self.cancel.is_cancelled() {
            return Some(StopReason::Cancelled);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Some(StopReason::Deadline);
            }
        }
        if let Some(stall) = &self.stall {
            if stall.is_cancelled() {
                return Some(StopReason::Stalled);
            }
        }
        None
    }

    /// Pulls the next journal I/O fault from the attached plan, if any.
    pub fn next_io_fault(&self) -> Option<IoFault> {
        self.faults.as_ref().and_then(|p| p.next_io_fault())
    }

    /// Pulls the next cache fault from the attached plan, if any.
    pub fn next_cache_fault(&self) -> Option<CacheFault> {
        self.faults.as_ref().and_then(|p| p.next_cache_fault())
    }

    /// Pulls the next fault from the attached plan, if any.
    ///
    /// Public so budget-aware passes outside the SAT core (e.g. the
    /// equality-saturation engine) can participate in fault injection.
    /// Each call consumes one plan index, so callers that must keep the
    /// plan's indices aligned with *solver* calls should hand such
    /// passes [`Budget::without_faults`] instead.
    pub fn next_fault(&self) -> Option<Fault> {
        self.faults.as_ref().and_then(|p| p.next_fault())
    }

    /// A copy of this budget with the fault plan detached (deadline,
    /// cancellation flag, and work limits are preserved and still
    /// shared). Used by pre-solving passes that poll the budget but must
    /// not consume the plan's solver-call indices.
    #[must_use]
    pub fn without_faults(&self) -> Budget {
        let mut b = self.clone();
        b.faults = None;
        b
    }

    /// Splits this budget into `n` fair shares for concurrent workers.
    ///
    /// The *work quotas* (conflicts, decisions, propagations) are divided
    /// evenly, with the remainder going to the lowest-indexed shares so
    /// the split is deterministic and loses nothing; every share keeps at
    /// least a quota of 1 so no worker is born dead. The *global* parts —
    /// deadline, cancellation flag, fault plan, and the per-solver
    /// memory ceiling — are shared by every
    /// share: a deadline is a point in time, not a divisible quantity,
    /// and cancellation must reach all workers.
    ///
    /// `partition(1)` returns the budget unchanged (one full share), and
    /// [`Budget::merge`] is the inverse up to the ±1 rounding of the
    /// remainder distribution.
    #[must_use]
    pub fn partition(&self, n: usize) -> Vec<Budget> {
        let n = n.max(1);
        let split = |limit: Option<u64>, idx: u64| {
            limit.map(|total| {
                let base = total / n as u64;
                let extra = u64::from(idx < total % n as u64);
                (base + extra).max(1)
            })
        };
        (0..n as u64)
            .map(|i| {
                let mut share = self.clone();
                share.conflicts = split(self.conflicts, i);
                share.decisions = split(self.decisions, i);
                share.propagations = split(self.propagations, i);
                share
            })
            .collect()
    }

    /// Merges budget shares back into one pooled budget: work quotas are
    /// summed (saturating; `None` — unlimited — absorbs everything),
    /// while the deadline, cancellation flag, and fault plan are taken
    /// from the first share (the shares of one [`Budget::partition`] all
    /// carry the same ones). Returns the unlimited budget when `shares`
    /// is empty.
    ///
    /// This is the work-stealing primitive: quota a finished worker never
    /// spent can be pooled and handed to the stragglers.
    #[must_use]
    pub fn merge<'a>(shares: impl IntoIterator<Item = &'a Budget>) -> Budget {
        let mut shares = shares.into_iter();
        let Some(first) = shares.next() else {
            return Budget::unlimited();
        };
        let mut merged = first.clone();
        for share in shares {
            let add = |a: Option<u64>, b: Option<u64>| match (a, b) {
                (Some(x), Some(y)) => Some(x.saturating_add(y)),
                _ => None,
            };
            merged.conflicts = add(merged.conflicts, share.conflicts);
            merged.decisions = add(merged.decisions, share.decisions);
            merged.propagations = add(merged.propagations, share.propagations);
        }
        merged
    }
}

/// A bare conflict budget is still accepted everywhere a [`Budget`] is:
/// `check(mgr, &assertions, None)` and `check(mgr, &assertions, Some(n))`
/// keep working unchanged.
impl From<Option<u64>> for Budget {
    fn from(conflicts: Option<u64>) -> Self {
        Budget::default().with_conflicts(conflicts)
    }
}

impl From<&Budget> for Budget {
    fn from(b: &Budget) -> Self {
        b.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_flag_is_shared_across_clones() {
        let a = CancelFlag::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
        b.clear();
        assert!(!a.is_cancelled());
    }

    #[test]
    fn checkpoint_reports_cancellation_before_deadline() {
        let cancel = CancelFlag::new();
        let b = Budget::unlimited()
            .with_cancel(cancel.clone())
            .with_deadline(Instant::now() - Duration::from_secs(1));
        cancel.cancel();
        assert_eq!(b.checkpoint(), Some(StopReason::Cancelled));
        cancel.clear();
        assert_eq!(b.checkpoint(), Some(StopReason::Deadline));
    }

    #[test]
    fn checkpoint_reports_stall_after_cancellation() {
        let cancel = CancelFlag::new();
        let stall = CancelFlag::new();
        let b = Budget::unlimited().with_cancel(cancel.clone()).with_stall_flag(stall.clone());
        assert_eq!(b.checkpoint(), None);
        stall.cancel();
        assert_eq!(b.checkpoint(), Some(StopReason::Stalled));
        // A user cancellation outranks the watchdog's verdict.
        cancel.cancel();
        assert_eq!(b.checkpoint(), Some(StopReason::Cancelled));
    }

    #[test]
    fn heartbeat_is_shared_across_clones() {
        let hb = Heartbeat::new();
        let b = Budget::unlimited().with_heartbeat(hb.clone());
        assert_eq!(hb.count(), 0);
        b.heartbeat_tick();
        b.clone().heartbeat_tick();
        assert_eq!(hb.count(), 2);
    }

    /// I/O faults ride a dedicated counter: draining one channel never
    /// shifts the call indices of the other, so adding journal faults
    /// to a plan cannot change which *solver* calls get faulted.
    #[test]
    fn io_faults_ride_a_separate_counter() {
        let plan = FaultPlan::new()
            .at(0, Fault::ForceUnknown)
            .io_at(0, IoFault::WriteError)
            .io_at(2, IoFault::FlipBit(5));
        assert_eq!(plan.next_io_fault(), Some(IoFault::WriteError)); // io op 0
        assert_eq!(plan.next_io_fault(), None); // io op 1
        assert_eq!(plan.next_fault(), Some(Fault::ForceUnknown)); // solver call 0
        assert_eq!(plan.next_io_fault(), Some(IoFault::FlipBit(5))); // io op 2
        assert_eq!(plan.calls_observed(), 1);
        assert_eq!(plan.io_calls_observed(), 3);
    }

    /// The four fault channels are fully independent: draining any
    /// subset never shifts the indices seen by the others, so adding
    /// cache chaos to an existing plan cannot change which solver calls,
    /// journal operations, or scheduling decisions get faulted.
    #[test]
    fn cache_faults_ride_a_fourth_counter() {
        let plan = FaultPlan::new()
            .at(0, Fault::ForceUnknown)
            .io_at(0, IoFault::WriteError)
            .service_at(0, ServiceFault::WorkerPanic)
            .cache_at(0, CacheFault::PoisonHit)
            .cache_at(2, CacheFault::CorruptEntry(9));
        assert_eq!(plan.next_cache_fault(), Some(CacheFault::PoisonHit)); // cache op 0
        assert_eq!(plan.next_cache_fault(), None); // cache op 1
        // Draining the other channels does not advance the cache counter.
        assert_eq!(plan.next_fault(), Some(Fault::ForceUnknown));
        assert_eq!(plan.next_io_fault(), Some(IoFault::WriteError));
        assert_eq!(plan.next_service_fault(), Some(ServiceFault::WorkerPanic));
        assert_eq!(plan.next_cache_fault(), Some(CacheFault::CorruptEntry(9))); // cache op 2
        assert_eq!(plan.cache_calls_observed(), 3);
        assert_eq!(plan.service_calls_observed(), 1);
        assert_eq!(plan.io_calls_observed(), 1);
        assert_eq!(plan.calls_observed(), 1);
    }

    #[test]
    fn budget_passes_cache_faults_through() {
        let plan = Arc::new(FaultPlan::new().cache_at(1, CacheFault::TruncateStore(16)));
        let b = Budget::unlimited().with_fault_plan(plan);
        assert_eq!(b.next_cache_fault(), None); // cache op 0
        assert_eq!(b.next_cache_fault(), Some(CacheFault::TruncateStore(16)));
        assert_eq!(Budget::unlimited().next_cache_fault(), None); // no plan attached
    }

    #[test]
    fn service_faults_ride_a_third_counter() {
        let plan = FaultPlan::new()
            .at(0, Fault::ForceUnknown)
            .io_at(0, IoFault::WriteError)
            .service_at(0, ServiceFault::WorkerPanic)
            .service_at(2, ServiceFault::SkewDeadline(250));
        assert_eq!(plan.next_service_fault(), Some(ServiceFault::WorkerPanic)); // decision 0
        assert_eq!(plan.next_service_fault(), None); // decision 1
        // Draining the other channels does not advance the service counter.
        assert_eq!(plan.next_fault(), Some(Fault::ForceUnknown));
        assert_eq!(plan.next_io_fault(), Some(IoFault::WriteError));
        assert_eq!(plan.next_service_fault(), Some(ServiceFault::SkewDeadline(250))); // decision 2
        assert_eq!(plan.service_calls_observed(), 3);
        assert_eq!(plan.io_calls_observed(), 1);
        assert_eq!(plan.calls_observed(), 1);
    }

    #[test]
    fn unlimited_budget_never_stops() {
        assert_eq!(Budget::unlimited().checkpoint(), None);
        assert_eq!(Budget::from(None).conflict_limit(), None);
        assert_eq!(Budget::from(Some(7)).conflict_limit(), Some(7));
    }

    #[test]
    fn explicit_fault_plan_fires_at_chosen_indices() {
        let plan = FaultPlan::new().at(1, Fault::ForceUnknown).at(3, Fault::DelayConflicts(5));
        assert_eq!(plan.next_fault(), None); // call 0
        assert_eq!(plan.next_fault(), Some(Fault::ForceUnknown)); // call 1
        assert_eq!(plan.next_fault(), None); // call 2
        assert_eq!(plan.next_fault(), Some(Fault::DelayConflicts(5))); // call 3
        assert_eq!(plan.calls_observed(), 4);
    }

    #[test]
    fn seeded_fault_plan_is_deterministic() {
        let a = FaultPlan::seeded(42, 3);
        let b = FaultPlan::seeded(42, 3);
        let fa: Vec<_> = (0..64).map(|_| a.next_fault()).collect();
        let fb: Vec<_> = (0..64).map(|_| b.next_fault()).collect();
        assert_eq!(fa, fb);
        assert!(fa.iter().any(Option::is_some), "rate 1/3 over 64 calls must fire");
        assert!(fa.iter().any(Option::is_none));
    }

    #[test]
    fn partition_splits_quotas_and_shares_global_parts() {
        let cancel = CancelFlag::new();
        let b = Budget::unlimited()
            .with_conflicts(Some(10))
            .with_decisions(Some(3))
            .with_cancel(cancel.clone());
        let shares = b.partition(4);
        assert_eq!(shares.len(), 4);
        // 10 = 3 + 3 + 2 + 2, deterministically front-loaded.
        let conflicts: Vec<_> = shares.iter().map(|s| s.conflict_limit()).collect();
        assert_eq!(conflicts, vec![Some(3), Some(3), Some(2), Some(2)]);
        // 3 over 4 shares: every share keeps at least 1.
        let decisions: Vec<_> = shares.iter().map(|s| s.decision_limit()).collect();
        assert_eq!(decisions, vec![Some(1), Some(1), Some(1), Some(1)]);
        // Unlimited quotas stay unlimited.
        assert!(shares.iter().all(|s| s.propagation_limit().is_none()));
        // The cancel flag is shared, not copied.
        cancel.cancel();
        assert!(shares.iter().all(|s| s.checkpoint() == Some(StopReason::Cancelled)));
    }

    #[test]
    fn partition_of_one_is_identity_and_merge_inverts() {
        let b = Budget::unlimited().with_conflicts(Some(100)).with_decisions(Some(7));
        let one = b.partition(1);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].conflict_limit(), Some(100));
        let shares = b.partition(3);
        let merged = Budget::merge(&shares);
        assert_eq!(merged.conflict_limit(), Some(100));
        // 7 = 3 + 2 + 2 merges back exactly; quotas below the share
        // count round up to 1 each, so merge may exceed the original.
        assert_eq!(merged.decision_limit(), Some(7));
        let tiny = Budget::unlimited().with_conflicts(Some(2)).partition(4);
        assert_eq!(Budget::merge(&tiny).conflict_limit(), Some(4));
    }

    #[test]
    fn merge_handles_unlimited_and_empty() {
        assert_eq!(Budget::merge([].into_iter()).conflict_limit(), None);
        let a = Budget::unlimited().with_conflicts(Some(5));
        let b = Budget::unlimited(); // unlimited absorbs the pool
        assert_eq!(Budget::merge([&a, &b]).conflict_limit(), None);
        assert_eq!(Budget::merge([&a, &a]).conflict_limit(), Some(10));
    }

    #[test]
    fn budget_clone_shares_fault_counter() {
        let plan = Arc::new(FaultPlan::new().at(1, Fault::ForceUnknown));
        let a = Budget::unlimited().with_fault_plan(plan.clone());
        let b = a.clone();
        assert_eq!(a.next_fault(), None); // call 0 via handle a
        assert_eq!(b.next_fault(), Some(Fault::ForceUnknown)); // call 1 via b
        assert_eq!(plan.calls_observed(), 2);
    }
}
