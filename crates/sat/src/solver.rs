//! The CDCL solver core: two-watched-literal propagation, first-UIP
//! conflict analysis, VSIDS, phase saving and Luby restarts.
//!
//! Every search is governed by a [`Budget`]: deadline and cancellation
//! are checked cooperatively at conflict, decision and restart
//! boundaries, and conflict/decision/propagation limits bound the work
//! per call. A tripped budget yields [`SolveResult::Unknown`] with the
//! cause recorded in [`Solver::stop_reason`].

use crate::budget::{Budget, Fault, StopReason};
use crate::heap::VarHeap;
use crate::proof::{ProofChecker, ProofError, ProofLog};
use crate::{Lit, Var};

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::value`].
    Sat,
    /// The formula (under the given assumptions, if any) is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before an answer was found.
    Unknown,
}

/// Options for one [`Solver::solve`] call.
///
/// The default is the plain solve: no assumptions, unlimited budget.
/// Both knobs are set builder-style, and a bare [`Budget`] (owned or by
/// reference) converts directly, so the common budgeted call reads
/// `solver.solve(&budget)`:
///
/// ```
/// # use owl_sat::{Lit, Solver, SolveOpts, SolveResult, Budget};
/// let mut s = Solver::new();
/// let v = s.new_var();
/// s.add_clause([Lit::positive(v)]);
/// assert_eq!(s.solve(SolveOpts::default()), SolveResult::Sat);
/// assert_eq!(s.solve(SolveOpts::default().assume([Lit::negative(v)])), SolveResult::Unsat);
/// assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Sat);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SolveOpts {
    /// Literals forced true for this call only.
    pub assumptions: Vec<Lit>,
    /// The resource envelope (deadline, work limits, cancellation,
    /// fault plan) governing this call.
    pub budget: Budget,
}

impl SolveOpts {
    /// No assumptions, unlimited budget.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds assumption literals (forced true for this call only).
    #[must_use]
    pub fn assume(mut self, lits: impl IntoIterator<Item = Lit>) -> Self {
        self.assumptions.extend(lits);
        self
    }

    /// Sets the resource budget for this call.
    #[must_use]
    pub fn with_budget(mut self, budget: impl Into<Budget>) -> Self {
        self.budget = budget.into();
        self
    }
}

impl From<Budget> for SolveOpts {
    fn from(budget: Budget) -> Self {
        SolveOpts { assumptions: Vec::new(), budget }
    }
}

impl From<&Budget> for SolveOpts {
    fn from(budget: &Budget) -> Self {
        SolveOpts { assumptions: Vec::new(), budget: budget.clone() }
    }
}

/// Solver statistics, for benchmarking and diagnostics.
#[derive(Debug, Default, Clone, Copy)]
pub struct Stats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of branching decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learned clauses currently in the database.
    pub learned: u64,
    /// Approximate bytes held by learned clauses currently in the
    /// database (clause header, literals, watch entries).
    pub learned_bytes: u64,
    /// Clause-database reductions triggered by the memory ceiling.
    pub reductions: u64,
    /// Learned clauses carried into a `solve` call from earlier calls on
    /// the same solver (summed at each incremental call's entry): the
    /// reuse an incremental session gets for free. Always zero for a
    /// solver that is solved once and discarded.
    pub clauses_retained: u64,
}

impl owl_trace::Report for Stats {
    fn report(&self) -> owl_trace::Section {
        owl_trace::Section::new()
            .with("conflicts", self.conflicts)
            .with("decisions", self.decisions)
            .with("propagations", self.propagations)
            .with("restarts", self.restarts)
            .with("learned", self.learned)
            .with("learned_bytes", self.learned_bytes)
            .with("reductions", self.reductions)
            .with("clauses_retained", self.clauses_retained)
    }
}

/// Samples the solver counters onto a tracer as monotonic deltas: one
/// flush per restart plus one at call exit, so the hot path never
/// touches the tracer between restarts.
struct CounterSampler {
    last: Stats,
    polls: u64,
}

impl CounterSampler {
    fn new(now: Stats) -> Self {
        CounterSampler { last: now, polls: 0 }
    }

    /// Notes one budget checkpoint; flushed as the `budget_polls` counter.
    fn poll(&mut self) {
        self.polls += 1;
    }

    fn flush(&mut self, tracer: &owl_trace::Tracer, now: Stats) {
        if !tracer.is_enabled() {
            return;
        }
        // `learned` can shrink across a database reduction, so every
        // delta saturates rather than wrapping.
        tracer.count("sat", "conflicts", now.conflicts.saturating_sub(self.last.conflicts));
        tracer.count("sat", "decisions", now.decisions.saturating_sub(self.last.decisions));
        tracer.count(
            "sat",
            "propagations",
            now.propagations.saturating_sub(self.last.propagations),
        );
        tracer.count("sat", "restarts", now.restarts.saturating_sub(self.last.restarts));
        tracer.count("sat", "learned", now.learned.saturating_sub(self.last.learned));
        tracer.count("sat", "reductions", now.reductions.saturating_sub(self.last.reductions));
        tracer.count(
            "sat",
            "clauses_retained",
            now.clauses_retained.saturating_sub(self.last.clauses_retained),
        );
        tracer.count("sat", "budget_polls", self.polls);
        self.polls = 0;
        self.last = now;
    }
}

const UNDEF: i8 = 0;
const TRUE: i8 = 1;
const FALSE: i8 = -1;

type ClauseRef = u32;
const NO_REASON: ClauseRef = u32::MAX;

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    /// True for conflict-learned clauses: only these are eligible for
    /// deletion when the memory ceiling triggers a database reduction.
    learnt: bool,
}

/// Approximate heap footprint of one clause: header, literal storage,
/// and its two watch-list entries.
fn clause_bytes(lits: usize) -> u64 {
    (std::mem::size_of::<Clause>()
        + lits * std::mem::size_of::<Lit>()
        + 2 * std::mem::size_of::<Watch>()) as u64
}

#[derive(Debug, Clone, Copy)]
struct Watch {
    clause: ClauseRef,
    /// A literal of the clause other than the watched one; if it is
    /// already true the clause is satisfied and the watch list walk can
    /// skip loading the clause.
    blocker: Lit,
}

/// A CDCL SAT solver over clauses of [`Lit`].
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watch>>,
    /// Assignment per variable: `TRUE`, `FALSE` or `UNDEF`.
    assign: Vec<i8>,
    /// Saved phase per variable, used when re-deciding it.
    phase: Vec<bool>,
    /// Decision level at which each variable was assigned.
    level: Vec<u32>,
    /// Clause that implied each variable, or `NO_REASON` for decisions.
    reason: Vec<ClauseRef>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    order: VarHeap,
    /// False once an empty clause has been derived at level zero.
    ok: bool,
    stats: Stats,
    /// Maximum number of conflicts before returning `Unknown`
    /// (`u64::MAX` = unlimited). Combined with the per-call [`Budget`].
    conflict_budget: u64,
    /// Why the last `solve` call answered `Unknown`, if it did.
    stop_reason: Option<StopReason>,
    /// When true, input and learned clauses are recorded in `proof`.
    certify: bool,
    /// DRUP-style log of input clauses and learned clauses.
    proof: ProofLog,
    /// Set by [`Fault::CorruptProof`]: garble the next logged learned
    /// clause (the solver's own database stays intact).
    corrupt_next_learned: bool,
    /// Canonical-decision mode: branch on the lowest-index unassigned
    /// variable with negative polarity, making the returned model the
    /// lexicographically least one — a pure function of the formula,
    /// independent of learned clauses, activity, or saved phases.
    canonical: bool,
    /// Scan cursor for canonical mode: every variable below it is
    /// assigned. Reset on backtrack.
    canon_cursor: usize,
    /// True once `solve` has run at least once, so retained learned
    /// clauses can be credited to `Stats::clauses_retained`.
    solved_once: bool,
    // Scratch buffers for conflict analysis.
    seen: Vec<bool>,
    analyze_stack: Vec<Lit>,
    analyze_clear: Vec<Lit>,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    #[must_use]
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            order: VarHeap::new(),
            ok: true,
            stats: Stats::default(),
            conflict_budget: u64::MAX,
            stop_reason: None,
            certify: false,
            proof: ProofLog::default(),
            corrupt_next_learned: false,
            canonical: false,
            canon_cursor: 0,
            solved_once: false,
            seen: Vec::new(),
            analyze_stack: Vec::new(),
            analyze_clear: Vec::new(),
        }
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assign.len());
        self.assign.push(UNDEF);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.seen.push(false);
        self.order.reserve(v);
        self.order.insert(v, &self.activity);
        v
    }

    /// The number of variables created so far.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// The number of clauses (original plus learned).
    #[must_use]
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Solver statistics.
    #[must_use]
    pub fn stats(&self) -> Stats {
        self.stats
    }

    /// Limits the number of conflicts per `solve` call; exceeding it makes
    /// `solve` return [`SolveResult::Unknown`].
    pub fn set_conflict_budget(&mut self, budget: u64) {
        self.conflict_budget = budget;
    }

    /// Why the last [`Solver::solve`] call answered
    /// [`SolveResult::Unknown`], or `None` if it did not.
    #[must_use]
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.stop_reason
    }

    /// Switches branching to canonical-decision mode: every decision
    /// picks the lowest-index unassigned variable and assigns it
    /// `false`.
    ///
    /// In this mode a [`SolveResult::Sat`] answer is the
    /// *lexicographically least* model of the formula (under the
    /// assumption prefix, if any): a variable is only ever made true by
    /// unit propagation, which is entailed by the formula plus the
    /// all-false decisions below it, so no lex-smaller model can exist.
    /// Because learned clauses are entailed lemmas, the model is a pure
    /// function of the clause set — retained learned clauses, VSIDS
    /// activity, saved phases, restarts and database reductions cannot
    /// change it. Incremental sessions use this mode so a warm solver
    /// and a from-scratch solver of the same formula agree bit for bit.
    pub fn set_canonical_decisions(&mut self, on: bool) {
        self.canonical = on;
        self.canon_cursor = 0;
    }

    /// Creates a retractable constraint group and returns its activation
    /// literal.
    ///
    /// Clauses added via [`Solver::add_clause_in_group`] are inert
    /// unless the activation literal is assumed true for a call
    /// ([`SolveOpts::assume`]); [`Solver::retire_group`] permanently
    /// retracts the whole group. This is the MiniSat selector-literal
    /// idiom layered on the existing assumption mechanism, so groups
    /// compose with budgets, proofs, and canonical-decision mode
    /// unchanged.
    pub fn new_group(&mut self) -> Lit {
        Lit::positive(self.new_var())
    }

    /// Adds a clause that is only active while `group`'s activation
    /// literal is assumed true (the clause is stored as
    /// `lits ∨ ¬group`).
    pub fn add_clause_in_group(&mut self, lits: impl IntoIterator<Item = Lit>, group: Lit) {
        self.add_clause(lits.into_iter().chain(std::iter::once(!group)));
    }

    /// Permanently retracts a constraint group created with
    /// [`Solver::new_group`] by asserting its activation literal false;
    /// every clause in the group becomes satisfied and the group can no
    /// longer be activated.
    pub fn retire_group(&mut self, group: Lit) {
        self.add_clause([!group]);
    }

    /// Turns on proof logging: every input clause and every learned
    /// clause is recorded in a [`ProofLog`] for independent checking.
    ///
    /// Must be called before any clause is added — a log missing early
    /// clauses cannot soundly certify anything.
    pub fn enable_certification(&mut self) {
        assert!(
            self.clauses.is_empty() && self.trail.is_empty() && self.proof.is_empty(),
            "certification must be enabled before clauses are added"
        );
        self.certify = true;
    }

    /// True if proof logging is on.
    #[must_use]
    pub fn certifying(&self) -> bool {
        self.certify
    }

    /// The recorded proof log (empty unless
    /// [`Solver::enable_certification`] was called).
    #[must_use]
    pub fn proof(&self) -> &ProofLog {
        &self.proof
    }

    /// Independently certifies the last [`SolveResult::Unsat`] answer by
    /// replaying the recorded trail through the [`ProofChecker`].
    ///
    /// Only meaningful for solves without assumptions; requires proof
    /// logging to have been enabled before any clause was added.
    pub fn certify_unsat(&self) -> Result<usize, ProofError> {
        ProofChecker::check_unsat(self.num_vars(), &self.proof)
    }

    /// Independently certifies one incremental answer by replaying only
    /// the proof prefix recorded up to segment `idx` (segments are
    /// marked at the end of every decided `solve` call; see
    /// [`ProofLog::segments`]). An Unsat answered in segment `idx` is
    /// certified without trusting anything the solver did afterwards.
    pub fn certify_unsat_segment(&self, idx: usize) -> Result<usize, ProofError> {
        ProofChecker::check_segment(self.num_vars(), &self.proof, idx)
    }

    /// Independently certifies the last [`SolveResult::Sat`] answer by
    /// evaluating every recorded input clause under the model.
    pub fn certify_model(&self) -> Result<(), ProofError> {
        ProofChecker::check_model(&self.proof, |v| self.value(v))
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// An empty clause (or one whose literals are all already false at the
    /// top level) makes the formula unsatisfiable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        debug_assert!(self.trail_lim.is_empty(), "clauses must be added at decision level 0");
        if !self.ok {
            return;
        }
        // Canonicalize: drop false literals, detect tautologies and
        // already-satisfied clauses, dedupe.
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        lits.sort_unstable();
        lits.dedup();
        if self.certify {
            // Record the clause before it is simplified against the
            // current assignment; the checker re-derives those units.
            self.proof.inputs.push(lits.clone());
        }
        let mut out = Vec::with_capacity(lits.len());
        for (i, &l) in lits.iter().enumerate() {
            debug_assert!(l.var().index() < self.num_vars(), "literal for unknown variable");
            if i + 1 < lits.len() && lits[i + 1] == !l {
                return; // tautology: contains l and !l
            }
            match self.lit_value(l) {
                TRUE => return, // satisfied at top level
                FALSE => {}     // drop
                _ => out.push(l),
            }
        }
        match out.len() {
            0 => self.ok = false,
            1 => {
                self.enqueue(out[0], NO_REASON);
                if self.propagate().is_some() {
                    self.ok = false;
                }
            }
            _ => {
                self.attach_clause(out, false);
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len() as ClauseRef;
        let w0 = lits[0];
        let w1 = lits[1];
        self.watches[(!w0).code()].push(Watch { clause: cref, blocker: w1 });
        self.watches[(!w1).code()].push(Watch { clause: cref, blocker: w0 });
        if learnt {
            self.stats.learned_bytes += clause_bytes(lits.len());
        }
        self.clauses.push(Clause { lits, learnt });
        cref
    }

    /// Clause-database reduction: drops the older half of the learned
    /// clauses that are not currently the reason of an assigned
    /// variable, then compacts the arena, remaps reason references and
    /// rebuilds the watch lists (each surviving clause keeps the same
    /// watched literal pair). Deletion only removes redundant lemmas, so
    /// soundness — and the DRUP proof log, which never records
    /// deletions — is unaffected.
    fn reduce_db(&mut self) {
        // Reasons of assigned variables must survive; unassigned
        // variables have `NO_REASON` (reset by `backtrack_to`).
        let mut protected = vec![false; self.clauses.len()];
        for v in 0..self.num_vars() {
            if self.assign[v] != UNDEF && self.reason[v] != NO_REASON {
                protected[self.reason[v] as usize] = true;
            }
        }
        let deletable: Vec<usize> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|&(i, c)| c.learnt && !protected[i])
            .map(|(i, _)| i)
            .collect();
        let drop_count = deletable.len().div_ceil(2);
        if drop_count == 0 {
            return;
        }
        let mut dropped = vec![false; self.clauses.len()];
        // Oldest first: clause age is arena order.
        for &i in deletable.iter().take(drop_count) {
            dropped[i] = true;
        }
        let mut map = vec![NO_REASON; self.clauses.len()];
        let old = std::mem::take(&mut self.clauses);
        for (i, c) in old.into_iter().enumerate() {
            if dropped[i] {
                self.stats.learned -= 1;
                self.stats.learned_bytes -= clause_bytes(c.lits.len());
                continue;
            }
            map[i] = self.clauses.len() as ClauseRef;
            self.clauses.push(c);
        }
        for r in &mut self.reason {
            if *r != NO_REASON {
                *r = map[*r as usize];
            }
        }
        for wl in &mut self.watches {
            wl.clear();
        }
        for (i, c) in self.clauses.iter().enumerate() {
            let (w0, w1) = (c.lits[0], c.lits[1]);
            self.watches[(!w0).code()].push(Watch { clause: i as ClauseRef, blocker: w1 });
            self.watches[(!w1).code()].push(Watch { clause: i as ClauseRef, blocker: w0 });
        }
        self.stats.reductions += 1;
    }

    fn lit_value(&self, l: Lit) -> i8 {
        lit_value_in(&self.assign, l)
    }

    /// The model value of `var` after a [`SolveResult::Sat`] answer, or
    /// `None` if the variable was never assigned.
    #[must_use]
    pub fn value(&self, var: Var) -> Option<bool> {
        match self.assign[var.index()] {
            TRUE => Some(true),
            FALSE => Some(false),
            _ => None,
        }
    }

    /// The model value of a literal after [`SolveResult::Sat`].
    #[must_use]
    pub fn lit_model(&self, lit: Lit) -> Option<bool> {
        self.value(lit.var()).map(|v| v ^ lit.is_negative())
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: ClauseRef) {
        debug_assert_eq!(self.lit_value(l), UNDEF);
        let v = l.var().index();
        self.assign[v] = if l.is_negative() { FALSE } else { TRUE };
        self.phase[v] = !l.is_negative();
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
        self.stats.propagations += 1;
    }

    /// Unit propagation. Returns the conflicting clause, if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let mut i = 0;
            let mut j = 0;
            let mut watch_list = std::mem::take(&mut self.watches[p.code()]);
            let mut conflict = None;
            'watches: while i < watch_list.len() {
                let w = watch_list[i];
                i += 1;
                if self.lit_value(w.blocker) == TRUE {
                    watch_list[j] = w;
                    j += 1;
                    continue;
                }
                let cref = w.clause;
                // Make sure the false literal (!p) is at position 1.
                let assign = &self.assign;
                let lits = &mut self.clauses[cref as usize].lits;
                if lits[0] == !p {
                    lits.swap(0, 1);
                }
                debug_assert_eq!(lits[1], !p);
                let first = lits[0];
                if first != w.blocker && lit_value_in(assign, first) == TRUE {
                    watch_list[j] = Watch { clause: cref, blocker: first };
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                for k in 2..lits.len() {
                    if lit_value_in(assign, lits[k]) != FALSE {
                        lits.swap(1, k);
                        let new_watch = lits[1];
                        self.watches[(!new_watch).code()]
                            .push(Watch { clause: cref, blocker: first });
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue 'watches;
                }
                // Clause is unit or conflicting.
                watch_list[j] = Watch { clause: cref, blocker: first };
                j += 1;
                if self.lit_value(first) == FALSE {
                    // Conflict: copy the remaining watches back.
                    while i < watch_list.len() {
                        watch_list[j] = watch_list[i];
                        j += 1;
                        i += 1;
                    }
                    conflict = Some(cref);
                } else {
                    self.enqueue(first, cref);
                }
            }
            watch_list.truncate(j);
            self.watches[p.code()] = watch_list;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.update(v, &self.activity);
    }

    fn decay_activity(&mut self) {
        self.var_inc /= 0.95;
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, mut conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = vec![Lit::from_code(0)]; // placeholder for the UIP
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut trail_idx = self.trail.len();

        loop {
            let clause_lits = self.clauses[conflict as usize].lits.clone();
            let start = usize::from(p.is_some());
            for &q in &clause_lits[start..] {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] == self.decision_level() {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                trail_idx -= 1;
                if self.seen[self.trail[trail_idx].var().index()] {
                    break;
                }
            }
            let uip = self.trail[trail_idx];
            self.seen[uip.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learned[0] = !uip;
                break;
            }
            p = Some(uip);
            conflict = self.reason[uip.var().index()];
            debug_assert_ne!(conflict, NO_REASON);
        }

        // Clause minimization: drop literals implied by the rest.
        self.analyze_clear = learned.clone();
        for l in &learned {
            self.seen[l.var().index()] = true;
        }
        let keep: Vec<Lit> = learned
            .iter()
            .enumerate()
            .filter(|&(i, &l)| i == 0 || !self.lit_redundant(l))
            .map(|(_, &l)| l)
            .collect();
        for l in &self.analyze_clear.clone() {
            self.seen[l.var().index()] = false;
        }
        let learned = keep;

        // Compute backtrack level: the second-highest level in the clause.
        let bt = if learned.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learned.len() {
                if self.level[learned[i].var().index()] > self.level[learned[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            self.level[learned[max_i].var().index()]
        };
        let mut learned = learned;
        if learned.len() > 1 {
            // Move a literal of the backtrack level to position 1 (watch).
            // Invariant: the range `1..learned.len()` is non-empty under
            // the `len > 1` guard, so `max_by_key` always yields a value.
            let max_i = (1..learned.len())
                .max_by_key(|&i| self.level[learned[i].var().index()])
                .expect("len > 1");
            learned.swap(1, max_i);
        }
        (learned, bt)
    }

    /// True if `l` is redundant in the learned clause: every literal in
    /// its reason is already in the clause (recursively).
    fn lit_redundant(&mut self, l: Lit) -> bool {
        if self.reason[l.var().index()] == NO_REASON {
            return false;
        }
        self.analyze_stack.clear();
        self.analyze_stack.push(l);
        let mut pending: Vec<Lit> = Vec::new();
        while let Some(q) = self.analyze_stack.pop() {
            let cref = self.reason[q.var().index()];
            if cref == NO_REASON {
                // Hit a decision that is not in the clause: not redundant.
                for p in pending {
                    self.seen[p.var().index()] = false;
                }
                return false;
            }
            let lits = self.clauses[cref as usize].lits.clone();
            for r in lits {
                let v = r.var();
                if r != q && !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    pending.push(r);
                    self.analyze_stack.push(r);
                }
            }
        }
        // All antecedents are marked: redundant. Keep markings; they are
        // cleared from analyze_clear plus pending at the end of analyze.
        self.analyze_clear.extend(pending);
        true
    }

    fn backtrack_to(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        for i in (lim..self.trail.len()).rev() {
            let v = self.trail[i].var();
            self.assign[v.index()] = UNDEF;
            self.reason[v.index()] = NO_REASON;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
        self.canon_cursor = 0;
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        if self.canonical {
            // Lowest-index unassigned variable, always false first: the
            // cursor only moves forward between backtracks because
            // assignments below it can only be added, never removed.
            while self.canon_cursor < self.assign.len() {
                if self.assign[self.canon_cursor] == UNDEF {
                    return Some(Lit::negative(Var::from_index(self.canon_cursor)));
                }
                self.canon_cursor += 1;
            }
            return None;
        }
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assign[v.index()] == UNDEF {
                return Some(Lit::with_sign(v, self.phase[v.index()]));
            }
        }
        None
    }

    /// Solves the formula under the given [`SolveOpts`].
    ///
    /// This is the single solving entry point: assumptions (literals
    /// forced true for this call only) and the resource [`Budget`] both
    /// arrive through the options struct, so `solve(SolveOpts::default())`
    /// is the plain unbudgeted solve.
    ///
    /// The budget's deadline and cancellation flag are polled at every
    /// conflict and restart, and periodically between decisions, so the
    /// call stops cooperatively close to the limit instead of running a
    /// hard query to its natural end. Exhaustion yields
    /// [`SolveResult::Unknown`]; the cause is in [`Solver::stop_reason`].
    pub fn solve(&mut self, opts: impl Into<SolveOpts>) -> SolveResult {
        let opts = opts.into();
        self.solve_impl(&opts.assumptions, &opts.budget)
    }

    fn solve_impl(&mut self, assumptions: &[Lit], budget: &Budget) -> SolveResult {
        self.stop_reason = None;
        let tracer = budget.tracer().clone();
        let _span = tracer.span("sat", "solve");
        let mut sampler = CounterSampler::new(self.stats);
        if !self.ok {
            // A root-level refutation found while adding clauses is a
            // decided answer too: record its segment boundary so it can
            // be certified from the prefix that produced it.
            if self.certify {
                self.proof.mark_segment();
            }
            return SolveResult::Unsat;
        }
        // Session accounting: learned clauses surviving from earlier
        // calls on this solver are the incremental reuse this call
        // starts from.
        if self.solved_once {
            self.stats.clauses_retained += self.stats.learned;
        }
        self.solved_once = true;

        let mut restart_idx = 0u64;
        let mut conflicts_until_restart = 32 * luby(restart_idx);
        // Phantom conflicts charged up front by the fault harness.
        let mut phantom_conflicts = 0u64;
        match budget.next_fault() {
            Some(Fault::ForceUnknown) => {
                self.stop_reason = Some(StopReason::FaultInjected);
                if tracer.is_enabled() {
                    tracer.instant("sat", "stop:FaultInjected");
                }
                return SolveResult::Unknown;
            }
            Some(Fault::SpuriousRestart) => conflicts_until_restart = 0,
            Some(Fault::DelayConflicts(n)) => phantom_conflicts = n,
            Some(Fault::StallMillis(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms))
            }
            Some(Fault::CorruptProof) => self.corrupt_next_learned = true,
            Some(Fault::Panic) => panic!("injected fault: solver panic (FaultPlan)"),
            None => {}
        }

        let call_start = self.stats;
        let conflict_limit = budget
            .conflict_limit()
            .unwrap_or(u64::MAX)
            .min(self.conflict_budget);
        sampler.poll();
        if let Some(reason) = budget.checkpoint() {
            self.stop_reason = Some(reason);
            if tracer.is_enabled() {
                tracer.instant("sat", format!("stop:{reason:?}"));
            }
            return SolveResult::Unknown;
        }
        // Session-aware memory ceiling: clauses retained from earlier
        // calls count against this call's byte budget up front, not
        // only after the first fresh conflict.
        if let Some(limit) = budget.memory_limit() {
            if self.stats.learned_bytes > limit {
                self.reduce_db();
                if self.stats.learned_bytes > limit {
                    self.stop_reason = Some(StopReason::MemoryLimit);
                    sampler.flush(&tracer, self.stats);
                    return SolveResult::Unknown;
                }
            }
        }

        let result = loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                budget.heartbeat_tick();
                if self.decision_level() as usize <= assumptions.len() {
                    // Conflict within (or below) the assumption prefix.
                    break SolveResult::Unsat;
                }
                if let Some(reason) =
                    self.work_exceeded(budget, &call_start, conflict_limit, phantom_conflicts)
                {
                    self.stop_reason = Some(reason);
                    break SolveResult::Unknown;
                }
                sampler.poll();
                if let Some(reason) = budget.checkpoint() {
                    self.stop_reason = Some(reason);
                    break SolveResult::Unknown;
                }
                let (learned, bt_level) = self.analyze(conflict);
                if self.certify {
                    self.record_learned(&learned);
                }
                // Never backtrack past the assumption prefix.
                let bt_level = bt_level.max(assumptions.len() as u32).min(self.decision_level() - 1);
                self.backtrack_to(bt_level);
                let asserting = learned[0];
                if learned.len() == 1 {
                    if self.decision_level() == 0 {
                        if self.lit_value(asserting) == FALSE {
                            self.ok = false;
                            break SolveResult::Unsat;
                        }
                        if self.lit_value(asserting) == UNDEF {
                            self.enqueue(asserting, NO_REASON);
                        }
                    } else {
                        // Cannot undo assumptions; re-derive under them.
                        if self.lit_value(asserting) == FALSE {
                            break SolveResult::Unsat;
                        }
                        if self.lit_value(asserting) == UNDEF {
                            self.enqueue(asserting, NO_REASON);
                        }
                    }
                } else {
                    let cref = self.attach_clause(learned, true);
                    self.stats.learned += 1;
                    let asserting = self.clauses[cref as usize].lits[0];
                    if self.lit_value(asserting) == UNDEF {
                        self.enqueue(asserting, cref);
                    } else if self.lit_value(asserting) == FALSE {
                        break SolveResult::Unsat;
                    }
                }
                // Memory ceiling: reduce the clause database when the
                // learned bytes exceed the cap, and stop with a typed
                // reason when reduction cannot get back under it.
                if let Some(limit) = budget.memory_limit() {
                    if self.stats.learned_bytes > limit {
                        self.reduce_db();
                        if self.stats.learned_bytes > limit {
                            self.stop_reason = Some(StopReason::MemoryLimit);
                            break SolveResult::Unknown;
                        }
                    }
                }
                self.decay_activity();
                conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
            } else {
                if conflicts_until_restart == 0 {
                    self.stats.restarts += 1;
                    restart_idx += 1;
                    conflicts_until_restart = 32 * luby(restart_idx);
                    self.backtrack_to(assumptions.len() as u32);
                    sampler.flush(&tracer, self.stats);
                    sampler.poll();
                    if let Some(reason) = budget.checkpoint() {
                        self.stop_reason = Some(reason);
                        break SolveResult::Unknown;
                    }
                }
                // Enqueue any pending assumptions as decisions.
                if (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.lit_value(a) {
                        TRUE => {
                            // Already implied; open an empty level for it.
                            self.trail_lim.push(self.trail.len());
                        }
                        FALSE => break SolveResult::Unsat,
                        _ => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, NO_REASON);
                        }
                    }
                    continue;
                }
                match self.pick_branch() {
                    None => break SolveResult::Sat,
                    Some(next) => {
                        self.stats.decisions += 1;
                        budget.heartbeat_tick();
                        if let Some(reason) = self.work_exceeded(
                            budget,
                            &call_start,
                            conflict_limit,
                            phantom_conflicts,
                        ) {
                            self.stop_reason = Some(reason);
                            break SolveResult::Unknown;
                        }
                        // Long conflict-free stretches must still observe
                        // the deadline; poll it every 64 decisions.
                        if self.stats.decisions & 63 == 0 {
                            sampler.poll();
                            if let Some(reason) = budget.checkpoint() {
                                self.stop_reason = Some(reason);
                                break SolveResult::Unknown;
                            }
                        }
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(next, NO_REASON);
                    }
                }
            }
        };

        sampler.flush(&tracer, self.stats);
        if tracer.is_enabled() {
            if let Some(reason) = self.stop_reason {
                tracer.instant("sat", format!("stop:{reason:?}"));
            }
        }
        if result == SolveResult::Sat {
            debug_assert!(self.model_satisfies_all());
        }
        // Segment the proof at every decided answer, so each incremental
        // Unsat can later be certified from exactly the clauses that
        // existed when it was answered.
        if self.certify && result != SolveResult::Unknown {
            self.proof.mark_segment();
        }
        // Keep the model readable after Sat; reset the search otherwise.
        if result != SolveResult::Sat {
            self.backtrack_to(0);
        }
        result
    }

    /// Checks the per-call work limits (conflicts, decisions,
    /// propagations) against the stats accumulated since `call_start`.
    fn work_exceeded(
        &self,
        budget: &Budget,
        call_start: &Stats,
        conflict_limit: u64,
        phantom_conflicts: u64,
    ) -> Option<StopReason> {
        let conflicts = self.stats.conflicts - call_start.conflicts + phantom_conflicts;
        if conflicts >= conflict_limit {
            return Some(StopReason::ConflictLimit);
        }
        if let Some(limit) = budget.decision_limit() {
            if self.stats.decisions - call_start.decisions >= limit {
                return Some(StopReason::DecisionLimit);
            }
        }
        if let Some(limit) = budget.propagation_limit() {
            if self.stats.propagations - call_start.propagations >= limit {
                return Some(StopReason::PropagationLimit);
            }
        }
        None
    }

    /// Appends a learned clause to the proof log, applying a pending
    /// [`Fault::CorruptProof`]: the corrupted log claims the opposite of
    /// the asserting literal was derived, while the solver's own database
    /// keeps the genuine clause — exactly the divergence an independent
    /// checker exists to catch.
    fn record_learned(&mut self, learned: &[Lit]) {
        if self.corrupt_next_learned {
            self.corrupt_next_learned = false;
            self.proof.steps.push(vec![!learned[0]]);
        } else {
            self.proof.steps.push(learned.to_vec());
        }
    }

    /// Clears the trail back to level zero so more clauses can be added
    /// for an incremental solve.
    ///
    /// Incremental semantics, precisely:
    ///
    /// - **The model is invalidated.** After a `Sat` answer the trail
    ///   (and thus [`Solver::value`]) is left readable; this call
    ///   un-assigns everything above level zero, so only root-level
    ///   consequences remain visible.
    /// - **Search state is retained.** Learned clauses, VSIDS activity
    ///   scores, and saved phases all survive, which is the entire point
    ///   of solving incrementally: the next [`Solver::solve`] call
    ///   starts from everything the previous one discovered.
    /// - **[`Stats`] accumulate monotonically.** Counters (`decisions`,
    ///   `propagations`, `conflicts`, `learned`, …) are never reset by
    ///   this call or by subsequent solves; they describe the whole
    ///   session, not the last call. `clauses_retained` grows by the
    ///   size of the retained learned-clause database at each re-solve.
    /// - **The proof log stays valid.** [`ProofLog`] keeps recording
    ///   input and learned clauses across calls; each decided answer
    ///   marks a segment boundary so
    ///   [`Solver::certify_unsat_segment`] can replay exactly the
    ///   prefix that existed when that answer was given, while
    ///   [`Solver::certify_unsat`] still checks the full log.
    pub fn reset_search(&mut self) {
        self.backtrack_to(0);
    }

    fn model_satisfies_all(&self) -> bool {
        self.clauses
            .iter()
            .all(|c| c.lits.iter().any(|&l| self.lit_value(l) == TRUE))
    }
}

fn lit_value_in(assign: &[i8], l: Lit) -> i8 {
    let v = assign[l.var().index()];
    if l.is_negative() {
        -v
    } else {
        v
    }
}

/// The Luby restart sequence (0-indexed): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
fn luby(i: u64) -> u64 {
    let mut x = i + 1;
    loop {
        if (x + 1).is_power_of_two() {
            return x.div_ceil(2);
        }
        let k = 63 - (x + 1).leading_zeros() as u64;
        x -= (1u64 << k) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lit, Solver};

    fn lit(solver_vars: &[Var], i: i32) -> Lit {
        let v = solver_vars[(i.unsigned_abs() - 1) as usize];
        Lit::with_sign(v, i > 0)
    }

    fn solver_with(nvars: usize, clauses: &[&[i32]]) -> (Solver, Vec<Var>) {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..nvars).map(|_| s.new_var()).collect();
        for c in clauses {
            s.add_clause(c.iter().map(|&i| lit(&vars, i)));
        }
        (s, vars)
    }

    #[test]
    fn trivial_sat() {
        let (mut s, vars) = solver_with(2, &[&[1, 2], &[-1]]);
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Sat);
        assert_eq!(s.value(vars[0]), Some(false));
        assert_eq!(s.value(vars[1]), Some(true));
    }

    #[test]
    fn trivial_unsat() {
        let (mut s, _) = solver_with(1, &[&[1], &[-1]]);
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Sat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        s.add_clause([]);
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Unsat);
    }

    #[test]
    fn tautology_is_dropped() {
        let (mut s, _) = solver_with(1, &[&[1, -1]]);
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Sat);
        assert_eq!(s.num_clauses(), 0);
    }

    #[test]
    fn chain_implication() {
        // x1 -> x2 -> ... -> x10, x1 forced true.
        let clauses: Vec<Vec<i32>> =
            (1..10).map(|i| vec![-i, i + 1]).chain([vec![1]]).collect();
        let refs: Vec<&[i32]> = clauses.iter().map(Vec::as_slice).collect();
        let (mut s, vars) = solver_with(10, &refs);
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Sat);
        for v in vars {
            assert_eq!(s.value(v), Some(true));
        }
    }

    /// Pigeonhole principle PHP(n+1, n): unsatisfiable, requires real search.
    fn pigeonhole(pigeons: usize, holes: usize) -> (Solver, Vec<Vec<Var>>) {
        let mut s = Solver::new();
        let grid: Vec<Vec<Var>> =
            (0..pigeons).map(|_| (0..holes).map(|_| s.new_var()).collect()).collect();
        for row in &grid {
            s.add_clause(row.iter().map(|&v| Lit::positive(v)));
        }
        for h in 0..holes {
            for (p1, row1) in grid.iter().enumerate() {
                for row2 in &grid[p1 + 1..] {
                    s.add_clause([Lit::negative(row1[h]), Lit::negative(row2[h])]);
                }
            }
        }
        (s, grid)
    }

    #[test]
    fn pigeonhole_unsat() {
        let (mut s, _) = pigeonhole(5, 4);
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_sat_when_enough_holes() {
        let (mut s, grid) = pigeonhole(4, 4);
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Sat);
        // Each pigeon in exactly one hole in the model.
        for row in &grid {
            assert!(row.iter().any(|&v| s.value(v) == Some(true)));
        }
    }

    #[test]
    fn assumptions_flip_result() {
        let (mut s, vars) = solver_with(2, &[&[1, 2]]);
        assert_eq!(s.solve(SolveOpts::default().assume([lit(&vars, -1), lit(&vars, -2)])), SolveResult::Unsat);
        // Without assumptions it is still satisfiable.
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Sat);
        assert_eq!(s.solve(SolveOpts::default().assume([lit(&vars, -1)])), SolveResult::Sat);
        assert_eq!(s.value(vars[1]), Some(true));
    }

    #[test]
    fn assumption_conflicts_with_unit() {
        let (mut s, vars) = solver_with(1, &[&[1]]);
        assert_eq!(s.solve(SolveOpts::default().assume([lit(&vars, -1)])), SolveResult::Unsat);
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Sat);
    }

    #[test]
    fn incremental_clause_addition() {
        let (mut s, vars) = solver_with(2, &[&[1, 2]]);
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Sat);
        s.reset_search();
        s.add_clause([lit(&vars, -1)]);
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Sat);
        assert_eq!(s.value(vars[1]), Some(true));
        s.reset_search();
        s.add_clause([lit(&vars, -2)]);
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Unsat);
    }

    #[test]
    fn stats_accumulate_monotonically_across_reset_search() {
        let (mut s, grid) = pigeonhole(4, 4);
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Sat);
        let first = s.stats();
        s.reset_search();
        // Pin pigeon 0 out of hole 0 and re-solve: counters must only grow.
        s.add_clause([Lit::negative(grid[0][0])]);
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Sat);
        let second = s.stats();
        assert!(second.decisions >= first.decisions);
        assert!(second.propagations >= first.propagations);
        assert!(second.conflicts >= first.conflicts);
        assert!(second.learned >= first.learned);
        assert!(second.clauses_retained >= first.clauses_retained);
    }

    #[test]
    fn clauses_retained_counts_surviving_learned_clauses() {
        // Stop a PHP(5,4) refutation mid-search: the interrupted call
        // leaves learned clauses behind, and the follow-up call on the
        // same session must report every one of them as retained.
        let (mut s, _) = pigeonhole(5, 4);
        let budget = Budget::unlimited().with_conflicts(Some(5));
        assert_eq!(s.solve(&budget), SolveResult::Unknown);
        assert_eq!(s.stats().clauses_retained, 0, "first call retains nothing");
        let learned = s.stats().learned;
        assert!(learned > 0, "expected learned clauses");
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Unsat);
        assert_eq!(s.stats().clauses_retained, learned);
    }

    /// Brute-force the lexicographically least satisfying assignment,
    /// comparing models as `(v0, v1, ...)` tuples with `false < true`.
    fn lex_least_model(nvars: usize, clauses: &[&[i32]]) -> Option<Vec<bool>> {
        'outer: for m in 0..(1u32 << nvars) {
            let assign: Vec<bool> =
                (0..nvars).map(|i| (m >> (nvars - 1 - i)) & 1 == 1).collect();
            for c in clauses {
                let sat = c.iter().any(|&l| {
                    let v = assign[(l.unsigned_abs() - 1) as usize];
                    if l > 0 { v } else { !v }
                });
                if !sat {
                    continue 'outer;
                }
            }
            return Some(assign);
        }
        None
    }

    #[test]
    fn canonical_mode_returns_the_lex_least_model() {
        let clauses: &[&[i32]] = &[&[1, 2], &[-1, 3], &[-2, 4], &[2, -3, -4], &[3, 4]];
        let expected = lex_least_model(4, clauses).expect("satisfiable");
        let (mut s, vars) = solver_with(4, clauses);
        s.set_canonical_decisions(true);
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Sat);
        let got: Vec<bool> = vars.iter().map(|&v| s.value(v).unwrap()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn canonical_model_is_independent_of_retained_state() {
        // An incremental session (learned clauses, saved phases, warm
        // activity) and a fresh solver on the full formula must return
        // the same canonical model.
        let batch1: &[&[i32]] = &[&[1, 2, 3], &[-1, -2], &[-2, -3], &[2, 3, 4]];
        let batch2: &[&[i32]] = &[&[-3, 5], &[-4, -5, 1], &[3, 4, 5]];
        let (mut inc, inc_vars) = solver_with(5, batch1);
        inc.set_canonical_decisions(true);
        assert_eq!(inc.solve(SolveOpts::default()), SolveResult::Sat);
        inc.reset_search();
        for c in batch2 {
            inc.add_clause(c.iter().map(|&i| lit(&inc_vars, i)));
        }
        assert_eq!(inc.solve(SolveOpts::default()), SolveResult::Sat);

        let all: Vec<&[i32]> = batch1.iter().chain(batch2).copied().collect();
        let (mut fresh, fresh_vars) = solver_with(5, &all);
        fresh.set_canonical_decisions(true);
        assert_eq!(fresh.solve(SolveOpts::default()), SolveResult::Sat);

        for (a, b) in inc_vars.iter().zip(&fresh_vars) {
            assert_eq!(inc.value(*a), fresh.value(*b));
        }
        let model: Vec<bool> = inc_vars.iter().map(|&v| inc.value(v).unwrap()).collect();
        let refs: Vec<&[i32]> = all.to_vec();
        assert_eq!(model, lex_least_model(5, &refs).expect("satisfiable"));
    }

    #[test]
    fn activation_groups_toggle_and_retire() {
        let mut s = Solver::new();
        let x = s.new_var();
        let g_pos = s.new_group();
        let g_neg = s.new_group();
        s.add_clause_in_group([Lit::positive(x)], g_pos);
        s.add_clause_in_group([Lit::negative(x)], g_neg);

        // Activating one group forces x accordingly.
        assert_eq!(s.solve(SolveOpts::default().assume([g_pos])), SolveResult::Sat);
        assert_eq!(s.value(x), Some(true));
        s.reset_search();
        assert_eq!(s.solve(SolveOpts::default().assume([g_neg])), SolveResult::Sat);
        assert_eq!(s.value(x), Some(false));
        s.reset_search();

        // Both at once contradict; with neither, the formula is free.
        assert_eq!(
            s.solve(SolveOpts::default().assume([g_pos, g_neg])),
            SolveResult::Unsat
        );
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Sat);
        s.reset_search();

        // Retiring a group permanently deactivates its clauses: the
        // formerly contradictory activation pair is now satisfiable.
        s.retire_group(g_pos);
        assert_eq!(
            s.solve(SolveOpts::default().assume([g_neg])),
            SolveResult::Sat
        );
        assert_eq!(s.value(x), Some(false));
    }

    #[test]
    fn conflict_budget_gives_unknown() {
        let (mut s, _) = pigeonhole(7, 6);
        s.set_conflict_budget(5);
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Unknown);
        assert_eq!(s.stop_reason(), Some(StopReason::ConflictLimit));
    }

    #[test]
    fn deadline_stops_search_mid_query() {
        use std::time::{Duration, Instant};
        // PHP(9, 8) takes far longer than 20ms to refute; the deadline
        // must fire inside the CDCL loop, not at the query's natural end.
        let (mut s, _) = pigeonhole(9, 8);
        let budget = Budget::unlimited().with_deadline_in(Duration::from_millis(20));
        let start = Instant::now();
        let result = s.solve(&budget);
        assert_eq!(result, SolveResult::Unknown);
        assert_eq!(s.stop_reason(), Some(StopReason::Deadline));
        assert!(start.elapsed() < Duration::from_secs(5), "stopped far past the deadline");
        assert!(s.stats().conflicts > 0, "search never started");
    }

    #[test]
    fn cancellation_stops_a_stalled_query() {
        use crate::CancelFlag;
        use std::time::Duration;
        let (mut s, _) = pigeonhole(5, 4);
        let cancel = CancelFlag::new();
        let plan =
            std::sync::Arc::new(crate::FaultPlan::new().at(0, Fault::StallMillis(100)));
        let budget =
            Budget::unlimited().with_cancel(cancel.clone()).with_fault_plan(plan);
        let canceller = {
            let cancel = cancel.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                cancel.cancel();
            })
        };
        // The stall keeps the call alive until the canceller fires; the
        // entry checkpoint after the stall observes the flag.
        assert_eq!(s.solve(&budget), SolveResult::Unknown);
        assert_eq!(s.stop_reason(), Some(StopReason::Cancelled));
        canceller.join().unwrap();
    }

    /// A watchdog's stall flag stops an in-flight query with the typed
    /// `Stalled` reason, exactly like a cancellation but distinguishable
    /// from one.
    #[test]
    fn stall_flag_stops_search_with_typed_reason() {
        use crate::CancelFlag;
        use std::time::Duration;
        let (mut s, _) = pigeonhole(5, 4);
        let stall = CancelFlag::new();
        let plan =
            std::sync::Arc::new(crate::FaultPlan::new().at(0, Fault::StallMillis(100)));
        let budget =
            Budget::unlimited().with_stall_flag(stall.clone()).with_fault_plan(plan);
        let supervisor = {
            let stall = stall.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                stall.cancel();
            })
        };
        assert_eq!(s.solve(&budget), SolveResult::Unknown);
        assert_eq!(s.stop_reason(), Some(StopReason::Stalled));
        supervisor.join().unwrap();
    }

    /// With a zero-byte memory ceiling, the very first learned clause is
    /// over budget and (being the reason of the asserted literal) cannot
    /// be reduced away: the solver stops with the typed reason instead
    /// of growing without bound.
    #[test]
    fn memory_ceiling_stops_with_typed_reason() {
        let (mut s, _) = pigeonhole(9, 8);
        let budget = Budget::unlimited().with_memory(Some(0));
        assert_eq!(s.solve(&budget), SolveResult::Unknown);
        assert_eq!(s.stop_reason(), Some(StopReason::MemoryLimit));
    }

    /// A moderate ceiling triggers clause-database reduction (dropping
    /// redundant lemmas to get back under budget) before the solver ever
    /// considers giving up, and the byte accounting stays consistent
    /// through arena compaction.
    #[test]
    fn memory_ceiling_triggers_reduction_first() {
        let (mut s, _) = pigeonhole(9, 8);
        // The conflict cap is a termination backstop: reduction cripples
        // learning, so refutation may be arbitrarily slow under it.
        let budget =
            Budget::unlimited().with_memory(Some(4096)).with_conflicts(Some(20_000));
        let result = s.solve(&budget);
        assert!(s.stats().reductions > 0, "the ceiling never triggered a reduction");
        let recount: u64 = s
            .clauses
            .iter()
            .filter(|c| c.learnt)
            .map(|c| clause_bytes(c.lits.len()))
            .sum();
        assert_eq!(s.stats().learned_bytes, recount, "byte accounting drifted");
        if result == SolveResult::Unknown {
            assert!(matches!(
                s.stop_reason(),
                Some(StopReason::MemoryLimit | StopReason::ConflictLimit)
            ));
        }
    }

    /// A generous ceiling never fires and does not perturb the result.
    #[test]
    fn generous_memory_ceiling_is_harmless() {
        let (mut s, _) = pigeonhole(5, 4);
        let budget = Budget::unlimited().with_memory(Some(1 << 20));
        assert_eq!(s.solve(&budget), SolveResult::Unsat);
        assert_eq!(s.stats().reductions, 0);
    }

    /// The heartbeat advances while the search runs, giving a watchdog
    /// supervisor a progress signal to sample.
    #[test]
    fn heartbeat_ticks_during_search() {
        use crate::Heartbeat;
        let hb = Heartbeat::new();
        let (mut s, _) = pigeonhole(6, 5);
        let budget = Budget::unlimited().with_heartbeat(hb.clone());
        assert_eq!(s.solve(&budget), SolveResult::Unsat);
        assert!(hb.count() > 0, "no heartbeat was posted during a non-trivial solve");
    }

    #[test]
    fn decision_limit_gives_unknown() {
        let (mut s, _) = pigeonhole(7, 6);
        let budget = Budget::unlimited().with_decisions(Some(3));
        assert_eq!(s.solve(&budget), SolveResult::Unknown);
        assert_eq!(s.stop_reason(), Some(StopReason::DecisionLimit));
    }

    #[test]
    fn propagation_limit_gives_unknown() {
        let (mut s, _) = pigeonhole(7, 6);
        let budget = Budget::unlimited().with_propagations(Some(2));
        assert_eq!(s.solve(&budget), SolveResult::Unknown);
        assert_eq!(s.stop_reason(), Some(StopReason::PropagationLimit));
    }

    #[test]
    fn forced_unknown_fault_then_clean_retry() {
        let plan = std::sync::Arc::new(crate::FaultPlan::new().at(0, Fault::ForceUnknown));
        let budget = Budget::unlimited().with_fault_plan(plan);
        let (mut s, _) = solver_with(2, &[&[1, 2], &[-1]]);
        assert_eq!(s.solve(&budget), SolveResult::Unknown);
        assert_eq!(s.stop_reason(), Some(StopReason::FaultInjected));
        // The next call (index 1) has no fault and succeeds.
        assert_eq!(s.solve(&budget), SolveResult::Sat);
        assert_eq!(s.stop_reason(), None);
    }

    #[test]
    fn delayed_conflicts_fault_burns_the_conflict_budget() {
        let plan =
            std::sync::Arc::new(crate::FaultPlan::new().at(0, Fault::DelayConflicts(10)));
        let budget = Budget::unlimited().with_conflicts(Some(5)).with_fault_plan(plan);
        // Satisfiable, but the 10 phantom conflicts exceed the limit of 5
        // at the first boundary check.
        let (mut s, _) = solver_with(2, &[&[1, 2]]);
        assert_eq!(s.solve(&budget), SolveResult::Unknown);
        assert_eq!(s.stop_reason(), Some(StopReason::ConflictLimit));
    }

    #[test]
    fn spurious_restart_fault_is_harmless() {
        let plan =
            std::sync::Arc::new(crate::FaultPlan::new().at(0, Fault::SpuriousRestart));
        let budget = Budget::unlimited().with_fault_plan(plan);
        let (mut s, grid) = pigeonhole(4, 4);
        assert_eq!(s.solve(&budget), SolveResult::Sat);
        for row in &grid {
            assert!(row.iter().any(|&v| s.value(v) == Some(true)));
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn xor_chain_sat_model_is_consistent() {
        // Encode x1 xor x2 = 1, x2 xor x3 = 1, x1 xor x3 = 0: satisfiable.
        let (mut s, vars) = solver_with(
            3,
            &[
                &[1, 2],
                &[-1, -2],
                &[2, 3],
                &[-2, -3],
                &[1, -3],
                &[-1, 3],
            ],
        );
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Sat);
        let x1 = s.value(vars[0]).unwrap();
        let x2 = s.value(vars[1]).unwrap();
        let x3 = s.value(vars[2]).unwrap();
        assert!(x1 ^ x2);
        assert!(x2 ^ x3);
        assert!(!(x1 ^ x3));
    }

    #[test]
    fn xor_chain_unsat() {
        // x1 xor x2 = 1, x2 xor x3 = 1, x1 xor x3 = 1 is unsatisfiable.
        let (mut s, _) = solver_with(
            3,
            &[
                &[1, 2],
                &[-1, -2],
                &[2, 3],
                &[-2, -3],
                &[1, 3],
                &[-1, -3],
            ],
        );
        assert_eq!(s.solve(SolveOpts::default()), SolveResult::Unsat);
    }

    #[test]
    fn stats_populate() {
        let (mut s, _) = pigeonhole(5, 4);
        s.solve(SolveOpts::default());
        let st = s.stats();
        assert!(st.conflicts > 0);
        assert!(st.decisions > 0);
        assert!(st.propagations > 0);
    }
}
