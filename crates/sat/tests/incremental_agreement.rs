//! Property sweep: incremental solving agrees with scratch solving.
//!
//! Random CNFs are fed to one persistent solver in `k` batches with a
//! solve interleaved after every batch, and each interleaved answer is
//! compared against a fresh solver given the same clause prefix all at
//! once. Mirrors the proptest suites elsewhere in the workspace but
//! runs on a hand-rolled splitmix64 generator so it needs no external
//! dev-dependencies.

use owl_sat::hash::splitmix64_next;
use owl_sat::{Budget, Fault, FaultPlan, Lit, ProofChecker, SolveResult, Solver};

struct Cnf {
    nvars: usize,
    clauses: Vec<Vec<i32>>,
}

/// A random CNF in the phase-transition neighbourhood: small enough to
/// brute-force, dense enough that both answers occur frequently.
fn random_cnf(state: &mut u64) -> Cnf {
    let nvars = 4 + (splitmix64_next(state) % 8) as usize; // 4..=11
    let nclauses = nvars + (splitmix64_next(state) % (3 * nvars as u64)) as usize;
    let clauses = (0..nclauses)
        .map(|_| {
            let width = 1 + (splitmix64_next(state) % 3) as usize;
            (0..width)
                .map(|_| {
                    let v = (splitmix64_next(state) % nvars as u64) as i32 + 1;
                    if splitmix64_next(state) & 1 == 0 {
                        v
                    } else {
                        -v
                    }
                })
                .collect()
        })
        .collect();
    Cnf { nvars, clauses }
}

fn build(nvars: usize) -> (Solver, Vec<owl_sat::Var>) {
    let mut s = Solver::new();
    let vars = (0..nvars).map(|_| s.new_var()).collect();
    (s, vars)
}

fn add(s: &mut Solver, vars: &[owl_sat::Var], clause: &[i32]) {
    s.add_clause(clause.iter().map(|&i| {
        let v = vars[(i.unsigned_abs() - 1) as usize];
        Lit::with_sign(v, i > 0)
    }));
}

fn model(s: &Solver, vars: &[owl_sat::Var]) -> Vec<Option<bool>> {
    vars.iter().map(|&v| s.value(v)).collect()
}

/// Splits `clauses` into `k` contiguous batches (some possibly empty).
fn batches(clauses: &[Vec<i32>], k: usize) -> Vec<&[Vec<i32>]> {
    let per = clauses.len().div_ceil(k).max(1);
    clauses.chunks(per).collect()
}

#[test]
fn incremental_solve_agrees_with_scratch_solve() {
    let mut state = 0x01f1_5a7a_6e55_u64 ^ 0x9e37_79b9_7f4a_7c15;
    for case in 0..300u64 {
        let _ = case;
        let cnf = random_cnf(&mut state);
        let k = 1 + (splitmix64_next(&mut state) % 4) as usize;
        let (mut inc, inc_vars) = build(cnf.nvars);
        inc.set_canonical_decisions(true);
        let mut fed = 0usize;
        for batch in batches(&cnf.clauses, k) {
            for c in batch {
                add(&mut inc, &inc_vars, c);
            }
            fed += batch.len();
            let inc_result = inc.solve(owl_sat::SolveOpts::default());

            // Scratch oracle over the same prefix, also canonical so a
            // Sat answer pins down one specific model.
            let (mut scratch, scratch_vars) = build(cnf.nvars);
            scratch.set_canonical_decisions(true);
            for c in &cnf.clauses[..fed] {
                add(&mut scratch, &scratch_vars, c);
            }
            let scratch_result = scratch.solve(owl_sat::SolveOpts::default());

            assert_eq!(
                inc_result, scratch_result,
                "answer diverged on prefix of {fed} clauses: {:?}",
                &cnf.clauses[..fed]
            );
            if inc_result == SolveResult::Sat {
                assert_eq!(
                    model(&inc, &inc_vars),
                    model(&scratch, &scratch_vars),
                    "canonical models diverged on prefix of {fed} clauses"
                );
            }
            inc.reset_search();
            if inc_result == SolveResult::Unsat {
                break; // the session is refuted for good
            }
        }
    }
}

#[test]
fn incremental_agreement_survives_budget_exhaustion() {
    let mut state = 0xb0d6_e7ed;
    for _ in 0..200u64 {
        let cnf = random_cnf(&mut state);
        let (mut inc, inc_vars) = build(cnf.nvars);
        inc.set_canonical_decisions(true);
        let mut fed = 0usize;
        for batch in batches(&cnf.clauses, 3) {
            for c in batch {
                add(&mut inc, &inc_vars, c);
            }
            fed += batch.len();
            // A starved budget may return Unknown; that is never wrong,
            // but a decided answer under starvation must still match the
            // unlimited scratch answer.
            let starved = Budget::unlimited().with_conflicts(Some(2));
            let inc_result = inc.solve(&starved);

            let (mut scratch, scratch_vars) = build(cnf.nvars);
            scratch.set_canonical_decisions(true);
            for c in &cnf.clauses[..fed] {
                add(&mut scratch, &scratch_vars, c);
            }
            let scratch_result = scratch.solve(owl_sat::SolveOpts::default());

            if inc_result != SolveResult::Unknown {
                assert_eq!(inc_result, scratch_result, "starved decided answer diverged");
            }
            inc.reset_search();
            if inc_result == SolveResult::Unsat {
                break;
            }
        }
    }
}

#[test]
fn incremental_agreement_survives_injected_faults() {
    let mut state = 0xfa17_ca5e;
    for round in 0..150u64 {
        let cnf = random_cnf(&mut state);
        // Rotate through the solver-level faults; each plan fires on the
        // first solver call it governs.
        let fault = match round % 3 {
            0 => Fault::SpuriousRestart,
            1 => Fault::DelayConflicts(3),
            _ => Fault::ForceUnknown,
        };
        let plan = std::sync::Arc::new(FaultPlan::new().at(0, fault));
        let budget = Budget::unlimited().with_fault_plan(plan);

        let (mut inc, inc_vars) = build(cnf.nvars);
        inc.set_canonical_decisions(true);
        let mut fed = 0usize;
        for batch in batches(&cnf.clauses, 2) {
            for c in batch {
                add(&mut inc, &inc_vars, c);
            }
            fed += batch.len();
            let inc_result = inc.solve(&budget);

            let (mut scratch, scratch_vars) = build(cnf.nvars);
            scratch.set_canonical_decisions(true);
            for c in &cnf.clauses[..fed] {
                add(&mut scratch, &scratch_vars, c);
            }
            let scratch_result = scratch.solve(owl_sat::SolveOpts::default());

            if inc_result != SolveResult::Unknown {
                assert_eq!(inc_result, scratch_result, "faulted decided answer diverged");
                if inc_result == SolveResult::Sat {
                    assert_eq!(model(&inc, &inc_vars), model(&scratch, &scratch_vars));
                }
            }
            inc.reset_search();
            if inc_result == SolveResult::Unsat {
                break;
            }
        }
    }
}

#[test]
fn incremental_unsat_segments_certify() {
    // Certified incremental sessions: every decided Unsat must be
    // independently checkable from its own proof segment.
    let mut state = 0x5e6_ce7;
    let mut certified = 0usize;
    for _ in 0..200u64 {
        let cnf = random_cnf(&mut state);
        let mut s = Solver::new();
        s.enable_certification();
        let vars: Vec<owl_sat::Var> = (0..cnf.nvars).map(|_| s.new_var()).collect();
        for batch in batches(&cnf.clauses, 3) {
            for c in batch {
                add(&mut s, &vars, c);
            }
            let result = s.solve(owl_sat::SolveOpts::default());
            match result {
                SolveResult::Sat => {
                    ProofChecker::check_model(s.proof(), |v| s.value(v))
                        .expect("sat model certifies");
                }
                SolveResult::Unsat => {
                    let last = s.proof().segments.len() - 1;
                    s.certify_unsat_segment(last).expect("unsat segment certifies");
                    s.certify_unsat().expect("full log certifies");
                    certified += 1;
                }
                SolveResult::Unknown => unreachable!("unlimited budget"),
            }
            s.reset_search();
            if result == SolveResult::Unsat {
                break;
            }
        }
    }
    assert!(certified > 20, "sweep too easy: only {certified} unsat cases");
}
