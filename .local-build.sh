#!/bin/bash
# Offline build/test driver for environments without registry access.
# Builds the path-only crate graph with bare rustc (external dev-deps like
# criterion/proptest are unavailable offline; lib targets don't need them).
set -e
OUT=${OUT:-/tmp/owl-rlibs}
mkdir -p "$OUT"
R="rustc --edition 2021 -O --crate-type rlib -L $OUT --out-dir $OUT"
cd /root/repo

$R --crate-name owl_trace crates/trace/src/lib.rs
$R --crate-name owl_bitvec crates/bitvec/src/lib.rs
$R --crate-name owl_sat crates/sat/src/lib.rs --extern owl_trace=$OUT/libowl_trace.rlib
$R --crate-name owl_cache crates/cache/src/lib.rs --extern owl_trace=$OUT/libowl_trace.rlib --extern owl_sat=$OUT/libowl_sat.rlib
$R --crate-name owl_egraph crates/egraph/src/lib.rs --extern owl_bitvec=$OUT/libowl_bitvec.rlib --extern owl_sat=$OUT/libowl_sat.rlib
$R --crate-name owl_smt crates/smt/src/lib.rs --extern owl_trace=$OUT/libowl_trace.rlib --extern owl_bitvec=$OUT/libowl_bitvec.rlib --extern owl_sat=$OUT/libowl_sat.rlib --extern owl_egraph=$OUT/libowl_egraph.rlib
$R --crate-name owl_oyster crates/oyster/src/lib.rs --extern owl_bitvec=$OUT/libowl_bitvec.rlib --extern owl_smt=$OUT/libowl_smt.rlib
$R --crate-name owl_ila crates/ila/src/lib.rs --extern owl_bitvec=$OUT/libowl_bitvec.rlib --extern owl_smt=$OUT/libowl_smt.rlib
$R --crate-name owl_core crates/core/src/lib.rs --extern owl_trace=$OUT/libowl_trace.rlib --extern owl_cache=$OUT/libowl_cache.rlib --extern owl_bitvec=$OUT/libowl_bitvec.rlib --extern owl_smt=$OUT/libowl_smt.rlib --extern owl_oyster=$OUT/libowl_oyster.rlib --extern owl_ila=$OUT/libowl_ila.rlib
$R --crate-name owl_hdl crates/hdl/src/lib.rs --extern owl_bitvec=$OUT/libowl_bitvec.rlib --extern owl_oyster=$OUT/libowl_oyster.rlib --extern owl_ila=$OUT/libowl_ila.rlib
$R --crate-name owl_netlist crates/netlist/src/lib.rs --extern owl_bitvec=$OUT/libowl_bitvec.rlib --extern owl_oyster=$OUT/libowl_oyster.rlib --extern owl_egraph=$OUT/libowl_egraph.rlib --extern owl_sat=$OUT/libowl_sat.rlib
$R --crate-name owl_cores crates/cores/src/lib.rs --extern owl_trace=$OUT/libowl_trace.rlib --extern owl_bitvec=$OUT/libowl_bitvec.rlib --extern owl_smt=$OUT/libowl_smt.rlib --extern owl_oyster=$OUT/libowl_oyster.rlib --extern owl_ila=$OUT/libowl_ila.rlib --extern owl_core=$OUT/libowl_core.rlib --extern owl_hdl=$OUT/libowl_hdl.rlib
$R --crate-name owl_service crates/service/src/lib.rs --extern owl_trace=$OUT/libowl_trace.rlib --extern owl_cache=$OUT/libowl_cache.rlib --extern owl_core=$OUT/libowl_core.rlib --extern owl_oyster=$OUT/libowl_oyster.rlib --extern owl_ila=$OUT/libowl_ila.rlib --extern owl_smt=$OUT/libowl_smt.rlib
$R --crate-name owl_bench crates/bench/src/lib.rs --extern owl_trace=$OUT/libowl_trace.rlib --extern owl_cache=$OUT/libowl_cache.rlib --extern owl_bitvec=$OUT/libowl_bitvec.rlib --extern owl_smt=$OUT/libowl_smt.rlib --extern owl_oyster=$OUT/libowl_oyster.rlib --extern owl_ila=$OUT/libowl_ila.rlib --extern owl_core=$OUT/libowl_core.rlib --extern owl_hdl=$OUT/libowl_hdl.rlib --extern owl_netlist=$OUT/libowl_netlist.rlib --extern owl_sat=$OUT/libowl_sat.rlib --extern owl_cores=$OUT/libowl_cores.rlib
$R --crate-name owl src/lib.rs --extern owl_trace=$OUT/libowl_trace.rlib --extern owl_cache=$OUT/libowl_cache.rlib --extern owl_bitvec=$OUT/libowl_bitvec.rlib --extern owl_egraph=$OUT/libowl_egraph.rlib --extern owl_smt=$OUT/libowl_smt.rlib --extern owl_oyster=$OUT/libowl_oyster.rlib --extern owl_ila=$OUT/libowl_ila.rlib --extern owl_core=$OUT/libowl_core.rlib --extern owl_hdl=$OUT/libowl_hdl.rlib --extern owl_netlist=$OUT/libowl_netlist.rlib --extern owl_sat=$OUT/libowl_sat.rlib --extern owl_cores=$OUT/libowl_cores.rlib --extern owl_service=$OUT/libowl_service.rlib
echo "ALL LIBS OK"

# Binaries and examples (criterion benches excluded: unavailable offline).
BOUT=${BOUT:-/tmp/owl-bins}
mkdir -p "$BOUT"
ALL="--extern owl_trace=$OUT/libowl_trace.rlib --extern owl_cache=$OUT/libowl_cache.rlib --extern owl_bitvec=$OUT/libowl_bitvec.rlib --extern owl_egraph=$OUT/libowl_egraph.rlib --extern owl_sat=$OUT/libowl_sat.rlib --extern owl_smt=$OUT/libowl_smt.rlib --extern owl_oyster=$OUT/libowl_oyster.rlib --extern owl_ila=$OUT/libowl_ila.rlib --extern owl_core=$OUT/libowl_core.rlib --extern owl_hdl=$OUT/libowl_hdl.rlib --extern owl_netlist=$OUT/libowl_netlist.rlib --extern owl_cores=$OUT/libowl_cores.rlib --extern owl_service=$OUT/libowl_service.rlib --extern owl_bench=$OUT/libowl_bench.rlib --extern owl=$OUT/libowl.rlib"
B="rustc --edition 2021 -O --crate-type bin -L $OUT --out-dir $BOUT"
for b in crates/bench/src/bin/*.rs; do
  $B --crate-name "bin_$(basename "$b" .rs)" "$b" $ALL
done
for e in examples/*.rs crates/cores/examples/*.rs; do
  $B --crate-name "ex_$(basename "$e" .rs)" "$e" $ALL
done
echo "ALL BINS OK"
