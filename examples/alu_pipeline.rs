//! The paper's §2.2 walkthrough: a three-stage pipelined ALU machine.
//! The abstraction function carries the pipeline timing (register file
//! read at time 1, written at time 3), which is exactly what lets the
//! synthesizer bridge the architectural specification and the pipelined
//! implementation.
//!
//! Run with: `cargo run --release --example alu_pipeline`

use owl::core::{complete_design, control_union, verify_design, SynthesisSession};
use owl::cores::alu_machine;
use owl::oyster::Interpreter;
use owl::smt::TermManager;
use owl::BitVec;
use std::collections::HashMap;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let sketch = alu_machine::sketch();
    let spec = alu_machine::spec();
    let alpha = alu_machine::alpha();

    println!("Three-stage ALU machine; abstraction function timing:");
    for m in alpha.mappings() {
        println!(
            "  {:<6} -> {:<10} ({}) reads {:?} writes {:?}",
            m.spec_name, m.datapath_name, m.kind, m.reads, m.writes
        );
    }
    println!("  evaluated for {} cycles\n", alpha.cycles());

    let mut mgr = TermManager::new();
    let out = SynthesisSession::new(&sketch, &spec, &alpha).run_with(&mut mgr)?.require_complete()?;
    for sol in &out.solutions {
        println!(
            "  {:<5} alu_sel = {}, wr_en = {}",
            sol.instr, sol.holes["alu_sel"], sol.holes["wr_en"]
        );
    }
    let union = control_union(&sketch, &spec, &alpha, &out.solutions)?;
    let complete = complete_design(&sketch, &union);
    let mut mgr2 = TermManager::new();
    verify_design(&mut mgr2, &complete, &spec, &alpha, None)?;
    println!("\nCompleted pipeline verified against the ALU specification.");

    // Drive one ADD through the pipeline: regs[3] = regs[1] + regs[2].
    let mut sim = Interpreter::new(&complete)?;
    sim.poke_mem("regfile", 1, BitVec::from_u64(8, 30))?;
    sim.poke_mem("regfile", 2, BitVec::from_u64(8, 12))?;
    let inputs: HashMap<String, BitVec> = [
        ("op".to_string(), BitVec::from_u64(2, alu_machine::OP_ADD)),
        ("dest".to_string(), BitVec::from_u64(2, 3)),
        ("src1".to_string(), BitVec::from_u64(2, 1)),
        ("src2".to_string(), BitVec::from_u64(2, 2)),
    ]
    .into();
    for _stage in 0..3 {
        sim.step(&inputs)?;
    }
    let result = sim.mem("regfile").expect("regfile").read(3);
    println!("After 3 cycles: regfile[3] = {} (expected 42)", result.to_u64().expect("fits"));
    assert_eq!(result.to_u64(), Some(42));
    Ok(())
}
