//! Synthesizes the FSM-style control of the AES-128 accelerator (paper
//! §4.3): state encodings and transitions come out of the solver, and the
//! completed accelerator encrypts the FIPS-197 test vector.
//!
//! Run with: `cargo run --release --example aes_fsm`

use owl::core::{complete_design, control_union, verify_design, SynthesisSession};
use owl::cores::aes;
use owl::oyster::Interpreter;
use owl::smt::TermManager;
use owl::BitVec;
use std::collections::HashMap;
use std::error::Error;
use std::time::Instant;

fn main() -> Result<(), Box<dyn Error>> {
    let cs = aes::case_study();
    println!("Synthesizing FSM control for the AES-128 accelerator...");
    let mut mgr = TermManager::new();
    let start = Instant::now();
    let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha).run_with(&mut mgr)?.require_complete()?;
    println!("Done in {:.1}s. Recovered state machine:", start.elapsed().as_secs_f64());
    for sol in &out.solutions {
        println!(
            "  {:<18} state encoding {}, next state {}",
            sol.instr,
            sol.holes[match sol.instr.as_str() {
                "FirstRound" => "st_first",
                "IntermediateRound" => "st_mid",
                _ => "st_final",
            }],
            sol.holes["fsm_next"]
        );
    }

    let union = control_union(&cs.sketch, &cs.spec, &cs.alpha, &out.solutions)?;
    let complete = complete_design(&cs.sketch, &union);
    let mut mgr2 = TermManager::new();
    verify_design(&mut mgr2, &complete, &cs.spec, &cs.alpha, None)?;
    println!("Completed accelerator verified against the ILA specification.");

    // Encrypt the FIPS-197 Appendix C.1 vector on the synthesized device.
    let key = [0u8, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15];
    let plaintext: [u8; 16] = [
        0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
        0xee, 0xff,
    ];
    let mut sim = Interpreter::new(&complete)?;
    let inputs: HashMap<String, BitVec> = [
        ("key_in".to_string(), aes::block_to_bv(key)),
        ("plaintext".to_string(), aes::block_to_bv(plaintext)),
    ]
    .into();
    for _round in 0..11 {
        sim.step(&inputs)?;
    }
    let ct = sim.reg("ciphertext").expect("ciphertext");
    println!("Ciphertext after 11 cycles: {}", ct.to_hex_string());
    assert_eq!(ct, &aes::block_to_bv(aes::aes128_encrypt_block(key, plaintext)));
    println!("Matches the FIPS-197 test vector.");
    Ok(())
}
