//! Developer feedback (the paper's §5.3 future-work item): when a
//! datapath sketch *cannot* implement the specification, the tool
//! pinpoints which state element's update is impossible instead of just
//! failing.
//!
//! Here the designer specifies a multiply-accumulate ISA but forgot to
//! put a multiplier in the datapath — the diagnosis blames `acc` and
//! exonerates the rest.
//!
//! Run with: `cargo run --release --example diagnose_sketch`

use owl::core::{diagnose, AbstractionFn, DatapathKind, SynthesisSession};
use owl::ila::{Ila, Instr, SpecExpr};
use owl::oyster::Design;
use owl::smt::TermManager;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // Specification: MAC (acc += a * b) and CLEAR instructions.
    let mut spec = Ila::new("mac");
    let op = spec.new_bv_input("op", 1);
    let a = spec.new_bv_input("a", 8);
    let b = spec.new_bv_input("b", 8);
    let acc = spec.new_bv_state("acc", 16);
    let count = spec.new_bv_state("count", 8);

    let mut mac = Instr::new("MAC");
    mac.set_decode(op.clone().eq(SpecExpr::const_u64(1, 1)));
    mac.set_update("acc", acc.clone().add(a.zext(16).mul(b.zext(16))));
    mac.set_update("count", count.clone().add(SpecExpr::const_u64(8, 1)));
    spec.add_instr(mac);

    let mut clear = Instr::new("CLEAR");
    clear.set_decode(op.eq(SpecExpr::const_u64(1, 0)));
    clear.set_update("acc", SpecExpr::const_u64(16, 0));
    clear.set_update("count", count.add(SpecExpr::const_u64(8, 1)));
    spec.add_instr(clear);

    // The sketch has an adder but NO multiplier — MAC is unimplementable.
    let sketch: Design = "design mac_dp\n\
        input op 1\ninput a 8\ninput b 8\n\
        hole clear 1\nhole en 1\n\
        register acc 16\nregister count 8\n\
        sum := acc + zext(a, 16) + zext(b, 16)\n\
        acc := if clear then 16'x0000 else if en then sum else acc\n\
        count := count + 8'x01\n\
        end\n"
        .parse()?;

    let mut alpha = AbstractionFn::new(1);
    alpha.map_input("op", "op").map_input("a", "a").map_input("b", "b");
    alpha.map("acc", "acc", DatapathKind::Register, [1], [1]);
    alpha.map("count", "count", DatapathKind::Register, [1], [1]);

    let mut mgr = TermManager::new();
    let out = SynthesisSession::new(&sketch, &spec, &alpha).run_with(&mut mgr)?;
    match out.require_complete() {
        Ok(_) => println!("unexpectedly synthesized — the sketch can add but not multiply!"),
        Err(e) => {
            println!("synthesis failed, as expected:\n  {e}\n");
            let mut mgr2 = TermManager::new();
            let diagnosis = diagnose(&mut mgr2, &sketch, &spec, &alpha, "MAC")?;
            println!("{diagnosis}");
            assert_eq!(diagnosis.blamed_state(), vec!["acc"]);
            println!("=> add a multiplier (or a mul path) to the datapath and re-run.");
        }
    }
    Ok(())
}
