//! Synthesizes the instruction-decoder control logic of the single-cycle
//! RV32I core (paper §4.1.1) and prints the generated PyRTL-style control
//! code — the shape of the paper's Fig. 7 — for the load-word
//! instruction, plus the compact unioned Oyster form.
//!
//! Run with: `cargo run --release --example riscv_decoder`

use owl::core::codegen::{line_count, oyster_control_logic, pyrtl_control_logic};
use owl::core::{control_union, SynthesisSession};
use owl::cores::rv32i::{self, Extensions};
use owl::smt::TermManager;
use std::error::Error;
use std::time::Instant;

fn main() -> Result<(), Box<dyn Error>> {
    let cs = rv32i::single_cycle(Extensions::BASE);
    println!(
        "Synthesizing control for {} ({} spec instructions, sketch {} Oyster lines)...",
        cs.name,
        cs.spec.instrs().len(),
        cs.sketch.line_count()
    );

    let mut mgr = TermManager::new();
    let start = Instant::now();
    let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha).run_with(&mut mgr)?.require_complete()?;
    println!(
        "Synthesized {} instructions in {:.2}s ({} counterexample rounds).\n",
        out.solutions.len(),
        start.elapsed().as_secs_f64(),
        out.stats.cex_rounds
    );

    // Fig. 7: the generated control for LW, rendered as PyRTL.
    let union = control_union(&cs.sketch, &cs.spec, &cs.alpha, &out.solutions)?;
    let pyrtl = pyrtl_control_logic(&union, &out.solutions);
    println!("=== Generated PyRTL control (excerpt: the LW block) ===");
    let mut in_lw = false;
    for ln in pyrtl.lines() {
        if ln.trim_start().starts_with("with pre_LW") {
            in_lw = true;
        } else if in_lw && ln.trim_start().starts_with("with pre_") {
            break;
        }
        if in_lw {
            println!("{ln}");
        }
    }

    let oyster = oyster_control_logic(&union);
    println!("\n=== Compact Oyster control (first 10 lines) ===");
    for ln in oyster.lines().take(10) {
        println!("{ln}");
    }
    println!(
        "\nControl-logic size: {} PyRTL lines / {} Oyster lines.",
        line_count(&pyrtl),
        line_count(&oyster)
    );
    Ok(())
}
