//! Quickstart: control logic synthesis end to end on the paper's
//! accumulator machine (§2.3).
//!
//! The designer writes three things:
//!  1. a datapath sketch with holes where the control belongs,
//!  2. an ILA specification of the architecture, and
//!  3. an abstraction function α connecting the two.
//!
//! The toolchain fills the holes, joins the per-instruction solutions
//! with the control union ⊔, re-verifies the completed design, and the
//! result simulates like any other hardware.
//!
//! Run with: `cargo run --release --example quickstart`

use owl::core::{complete_design, control_union, verify_design, SynthesisSession};
use owl::cores::accumulator;
use owl::oyster::Interpreter;
use owl::smt::TermManager;
use owl::BitVec;
use std::collections::HashMap;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // The three synthesis inputs, exactly as the paper's Fig. 1 shows.
    let sketch = accumulator::sketch();
    let spec = accumulator::spec();
    let alpha = accumulator::alpha();

    println!("=== Datapath sketch (holes marked `hole`) ===\n{sketch}");

    // Synthesize: per-instruction CEGIS plus the control union.
    let mut mgr = TermManager::new();
    let out = SynthesisSession::new(&sketch, &spec, &alpha).run_with(&mut mgr)?.require_complete()?;
    println!("=== Per-instruction hole solutions ===");
    for sol in &out.solutions {
        let mut holes: Vec<_> = sol.holes.iter().collect();
        holes.sort_by_key(|(name, _)| name.as_str());
        let rendered: Vec<String> =
            holes.iter().map(|(name, v)| format!("{name} = {v}")).collect();
        println!("  {:<12} {}", sol.instr, rendered.join(", "));
    }

    let union = control_union(&sketch, &spec, &alpha, &out.solutions)?;
    let complete = complete_design(&sketch, &union);
    println!("\n=== Completed design ===\n{complete}");

    // Independent verification: the completed design satisfies every
    // instruction of the specification.
    let mut mgr2 = TermManager::new();
    verify_design(&mut mgr2, &complete, &spec, &alpha, None)?;
    println!("=== Verified against the specification ===\n");

    // And it runs: reset -> accumulate 3, 2 -> stop.
    let mut sim = Interpreter::new(&complete)?;
    let drive = |reset: u64, go: u64, stop: u64, val: u64| -> HashMap<String, BitVec> {
        [
            ("reset".to_string(), BitVec::from_u64(1, reset)),
            ("go".to_string(), BitVec::from_u64(1, go)),
            ("stop".to_string(), BitVec::from_u64(1, stop)),
            ("val".to_string(), BitVec::from_u64(2, val)),
        ]
        .into()
    };
    sim.step(&drive(0, 1, 0, 3))?; // go: acc += 3
    sim.step(&drive(0, 0, 0, 2))?; // continue: acc += 2
    sim.step(&drive(0, 0, 1, 0))?; // stop
    println!(
        "Simulated accumulator after go(3), go(2), stop: acc = {}",
        sim.reg("acc").expect("acc").to_u64().expect("fits")
    );
    assert_eq!(sim.reg("acc").expect("acc").to_u64(), Some(5));
    Ok(())
}
