//! The agile design loop the paper motivates in §1: iterate over the
//! architecture (here, adding the Zbkb then Zbkc cryptography extensions)
//! without rewriting control logic by hand. Incremental re-synthesis
//! verifies-and-reuses the previous iteration's control for unchanged
//! instructions and only solves the new ones.
//!
//! Run with: `cargo run --release --example agile_iteration`

use owl::core::{complete_design, control_union, verify_design, SynthesisSession};
use owl::cores::rv32i::{self, Extensions};
use owl::smt::TermManager;
use std::error::Error;
use std::time::Instant;

fn main() -> Result<(), Box<dyn Error>> {
    // Iteration 1: the base RV32I core, from scratch.
    let base = rv32i::single_cycle(Extensions::BASE);
    let mut mgr = TermManager::new();
    let t0 = Instant::now();
    let base_out = SynthesisSession::new(&base.sketch, &base.spec, &base.alpha)
        .run_with(&mut mgr)?
        .require_complete()?;
    println!(
        "iteration 1 (RV32I, 37 instrs): from scratch in {:.2}s ({} CEGIS rounds)",
        t0.elapsed().as_secs_f64(),
        base_out.stats.cex_rounds
    );

    // Iteration 2: the designer adds the Zbkb extension — the spec gains
    // 12 instructions and the sketch's ALU grows. Previous control is
    // re-verified and reused; only the new instructions are solved.
    let zbkb = rv32i::single_cycle(Extensions::ZBKB);
    let mut mgr2 = TermManager::new();
    let t1 = Instant::now();
    let zbkb_out = SynthesisSession::new(&zbkb.sketch, &zbkb.spec, &zbkb.alpha)
        .seeded_with(base_out.solutions.clone())
        .run_with(&mut mgr2)?
        .require_complete()?;
    println!(
        "iteration 2 (+Zbkb, 49 instrs): {:.2}s, reused {} of 49, {} CEGIS rounds",
        t1.elapsed().as_secs_f64(),
        zbkb_out.stats.reused,
        zbkb_out.stats.cex_rounds
    );

    // Iteration 3: add Zbkc on top.
    let zbkc = rv32i::single_cycle(Extensions::ZBKC);
    let mut mgr3 = TermManager::new();
    let t2 = Instant::now();
    let zbkc_out = SynthesisSession::new(&zbkc.sketch, &zbkc.spec, &zbkc.alpha)
        .seeded_with(zbkb_out.solutions.clone())
        .run_with(&mut mgr3)?
        .require_complete()?;
    println!(
        "iteration 3 (+Zbkc, 51 instrs): {:.2}s, reused {} of 51, {} CEGIS rounds",
        t2.elapsed().as_secs_f64(),
        zbkc_out.stats.reused,
        zbkc_out.stats.cex_rounds
    );

    // The final design still carries the full formal assurance.
    let union = control_union(&zbkc.sketch, &zbkc.spec, &zbkc.alpha, &zbkc_out.solutions)?;
    let complete = complete_design(&zbkc.sketch, &union);
    verify_design(&mut TermManager::new(), &complete, &zbkc.spec, &zbkc.alpha, None)?;
    println!("final RV32I+Zbkb+Zbkc design verified against its specification.");
    Ok(())
}
