//! The §5.2 experiment as a runnable example: synthesize the bespoke
//! constant-time cryptography core (branch-free CMOV ISA), compile
//! SHA-256 to it, and show that the cycle count is independent of the
//! message length — on both the generated-control core and a handwritten
//! reference.
//!
//! Run with: `cargo run --release --example constant_time_sha256`

use owl::core::{complete_design, control_union_with, SynthesisSession};
use owl::cores::{crypto_core, sha256};
use owl::smt::TermManager;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let cs = crypto_core::case_study();
    println!("Synthesizing the constant-time core ({} instructions)...", cs.spec.instrs().len());
    let mut mgr = TermManager::new();
    let out = SynthesisSession::new(&cs.sketch, &cs.spec, &cs.alpha).run_with(&mut mgr)?.require_complete()?;
    let union = control_union_with(
        &cs.sketch,
        &cs.spec,
        &cs.alpha,
        &out.solutions,
        &crypto_core::decode_bindings(),
    )?;
    let generated = complete_design(&cs.sketch, &union);
    let reference = crypto_core::reference();

    let program = sha256::sha256_program();
    let code = program.encode();
    println!("SHA-256 program: {} instructions, message-independent.\n", program.len());

    for len in [4usize, 12, 20, 32] {
        let msg: Vec<u8> = (0..len).map(|i| (i * 31 + 5) as u8).collect();
        let data = sha256::message_data(&msg);
        let (gen_cycles, gen_sim) = crypto_core::run_program(&generated, &code, &data, 200_000);
        let (ref_cycles, _) = crypto_core::run_program(&reference, &code, &data, 200_000);
        let digest = sha256::read_digest(&gen_sim);
        assert_eq!(digest, sha256::sha256_ref(&msg), "digest mismatch at len {len}");
        println!(
            "len {len:>2}: {gen_cycles} cycles (generated) / {ref_cycles} cycles (reference), digest verified"
        );
    }
    println!("\nSame cycle count for every length: resilient to timing side channels.");
    Ok(())
}
